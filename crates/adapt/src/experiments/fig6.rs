//! Figure 6: MLP hyperparameter screening (§6.3).
//!
//! A high-throughput screen over 1–3-layer MLPs with 4–32 filters per
//! layer plots PGOS mean vs. std across validation folds; the winner is
//! the topology minimizing std while keeping a high mean — and within the
//! budget panel, restricted to nets affordable at a 50k-instruction
//! prediction interval.

use crate::config::ExperimentConfig;
use crate::counters::TABLE4_COUNTERS;
use crate::paired::CorpusTelemetry;
use crate::train::{build_dataset, violation_window};
use psca_cpu::Mode;
use psca_ml::crossval::{group_folds, mean_std};
use psca_ml::metrics::{rate_of_sla_violations, Confusion};
use psca_ml::{Mlp, MlpConfig, Standardizer};
use psca_uc::{ops_budget, CpuSpec, FirmwareModel, McuSpec};

/// One screened network.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// PGOS mean across folds.
    pub pgos_mean: f64,
    /// PGOS std across folds.
    pub pgos_std: f64,
    /// RSV mean across folds.
    pub rsv_mean: f64,
    /// Firmware ops per prediction.
    pub ops: u64,
    /// Whether the net fits the 50k-instruction budget (781 ops).
    pub fits_50k_budget: bool,
}

/// The regenerated figure.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// All screened networks.
    pub points: Vec<Fig6Point>,
    /// Index of the selected topology (min std subject to high mean,
    /// within budget).
    pub selected: usize,
}

/// The topology grid: 1–3 layers × {4, 8, 16, 32} leading filters
/// (3-layer nets halve the final layer, as the paper's 8/8/4 does).
pub fn topology_grid() -> Vec<Vec<usize>> {
    let mut grid = Vec::new();
    for &f in &[4usize, 8, 16, 32] {
        grid.push(vec![f]);
        grid.push(vec![f, f]);
        grid.push(vec![f, f, (f / 2).max(2)]);
    }
    grid
}

/// Runs the screen.
pub fn run(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry) -> Fig6 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let events = TABLE4_COUNTERS.to_vec();
    let raw = build_dataset(hdtr, Mode::LowPower, &events, 1, &cfg.sla);
    let w = violation_window(cfg, 1);
    let folds = group_folds(raw.groups(), cfg.folds, 0.2, cfg.sub_seed("fig6"));
    let budget_50k = ops_budget(&CpuSpec::paper(), &McuSpec::paper(), 50_000).budget;
    let mut points = Vec::new();
    for hidden in topology_grid() {
        let mlp_cfg = MlpConfig {
            hidden: hidden.clone(),
            epochs: 20,
            ..MlpConfig::default()
        };
        let mut pgos_vals = Vec::new();
        let mut rsv_vals = Vec::new();
        let mut ops = 0;
        for (fi, fold) in folds.iter().enumerate() {
            let tune_raw = raw.subset(&fold.tune);
            let std = Standardizer::fit(&tune_raw);
            let tune = std.transform_dataset(&tune_raw);
            let val = std.transform_dataset(&raw.subset(&fold.validate));
            let mut mlp = Mlp::fit(&mlp_cfg, &tune, cfg.sub_seed("fig6-mlp") ^ fi as u64);
            // Sensitivity adjustment: keep tuning-set RSV below 1% (§6.3).
            let mut fw = FirmwareModel::Mlp(mlp.clone());
            crate::train::tune_threshold(
                &mut fw,
                tune.features(),
                tune.labels(),
                w,
                crate::train::THRESHOLD_TARGET_RSV,
            );
            if let FirmwareModel::Mlp(tuned) = &fw {
                mlp = tuned.clone();
            }
            ops = fw.ops_per_prediction(events.len());
            let preds: Vec<u8> = (0..val.len())
                .map(|i| mlp.predict(val.sample(i).0) as u8)
                .collect();
            pgos_vals.push(Confusion::from_predictions(val.labels(), &preds).pgos());
            rsv_vals.push(rate_of_sla_violations(val.labels(), &preds, w));
        }
        let (pm, ps) = mean_std(&pgos_vals);
        let (rm, _) = mean_std(&rsv_vals);
        points.push(Fig6Point {
            hidden,
            pgos_mean: pm,
            pgos_std: ps,
            rsv_mean: rm,
            ops,
            fits_50k_budget: ops <= budget_50k,
        });
    }
    // Selection: among in-budget nets within 95% of the best in-budget
    // mean, minimize RSV first (the deployment-critical metric), breaking
    // near-ties by PGOS std.
    let best_mean = points
        .iter()
        .filter(|p| p.fits_50k_budget)
        .map(|p| p.pgos_mean)
        .fold(0.0f64, f64::max);
    let min_rsv = points
        .iter()
        .filter(|p| p.fits_50k_budget && p.pgos_mean >= 0.95 * best_mean)
        .map(|p| p.rsv_mean)
        .fold(f64::INFINITY, f64::min);
    let selected = points
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            p.fits_50k_budget && p.pgos_mean >= 0.95 * best_mean && p.rsv_mean <= min_rsv + 0.001
        })
        .min_by(|a, b| {
            a.1.pgos_std
                .partial_cmp(&b.1.pgos_std)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    Fig6 { points, selected }
}

impl std::fmt::Display for Fig6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 6 — MLP hyperparameter screen (PGOS mean vs std)")?;
        writeln!(
            f,
            "{:>16} {:>10} {:>10} {:>9} {:>6} {:>7} {:>9}",
            "topology", "PGOS avg", "PGOS std", "RSV avg", "ops", "<=50k?", "selected"
        )?;
        for (i, p) in self.points.iter().enumerate() {
            let topo = p
                .hidden
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("/");
            writeln!(
                f,
                "{:>16} {:>9.1}% {:>9.1}% {:>8.1}% {:>6} {:>7} {:>9}",
                topo,
                100.0 * p.pgos_mean,
                100.0 * p.pgos_std,
                100.0 * p.rsv_mean,
                p.ops,
                if p.fits_50k_budget { "yes" } else { "no" },
                if i == self.selected { "<==" } else { "" }
            )?;
        }
        writeln!(f, "(paper selects the 3-layer 8/8/4 net)")
    }
}
