//! Figure 9: per-benchmark PPW and RSV, CHARSTAR vs Best RF (§7.1).
//!
//! This is the blindspot exhibit: CHARSTAR's expert-counter MLP posts
//! catastrophic RSV on specific FP benchmarks (77.8% on `654.roms_s`)
//! while Best RF stays below 1% everywhere.

use crate::config::ExperimentConfig;
use crate::experiments::eval::{evaluate_model_on_corpus, ModelEvaluation};
use crate::paired::CorpusTelemetry;
use crate::train::ModelKind;
use crate::zoo;

/// One benchmark's comparison row.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: String,
    /// CHARSTAR metrics.
    pub charstar: ModelEvaluation,
    /// Best RF metrics.
    pub best_rf: ModelEvaluation,
}

/// Regenerated Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig9Row>,
    /// Suite-wide (CHARSTAR, Best RF) summaries.
    pub overall: (ModelEvaluation, ModelEvaluation),
}

/// Trains both models on HDTR and breaks results out per benchmark.
pub fn run(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry, spec: &CorpusTelemetry) -> Fig9 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let charstar = zoo::train(ModelKind::Charstar, hdtr, cfg);
    let best_rf = zoo::train(ModelKind::BestRf, hdtr, cfg);
    let ce = evaluate_model_on_corpus(&charstar, spec, cfg);
    let re = evaluate_model_on_corpus(&best_rf, spec, cfg);
    let rows = ce
        .per_app
        .iter()
        .map(|(name, cm)| Fig9Row {
            name: name.clone(),
            charstar: *cm,
            best_rf: *re.app(name).unwrap_or(&ModelEvaluation::default()),
        })
        .collect();
    Fig9 {
        rows,
        overall: (ce.overall, re.overall),
    }
}

impl Fig9 {
    /// The worst per-benchmark RSV each model exhibits.
    pub fn worst_rsv(&self) -> (f64, f64) {
        let c = self
            .rows
            .iter()
            .map(|r| r.charstar.rsv)
            .fold(0.0f64, f64::max);
        let b = self
            .rows
            .iter()
            .map(|r| r.best_rf.rsv)
            .fold(0.0f64, f64::max);
        (c, b)
    }
}

impl std::fmt::Display for Fig9 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 9 — per-benchmark PPW / RSV: CHARSTAR vs Best RF")?;
        writeln!(
            f,
            "{:20} {:>9} {:>8} {:>9} {:>8}",
            "benchmark", "CHR PPW", "CHR RSV", "RF PPW", "RF RSV"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:20} {:>8.1}% {:>7.2}% {:>8.1}% {:>7.2}%",
                r.name,
                100.0 * r.charstar.ppw_gain,
                100.0 * r.charstar.rsv,
                100.0 * r.best_rf.ppw_gain,
                100.0 * r.best_rf.rsv
            )?;
        }
        let (wc, wb) = self.worst_rsv();
        writeln!(
            f,
            "overall: CHARSTAR PPW {:.1}% / RSV {:.2}% (worst {:.1}%), Best RF PPW {:.1}% / RSV {:.2}% (worst {:.1}%)",
            100.0 * self.overall.0.ppw_gain,
            100.0 * self.overall.0.rsv,
            100.0 * wc,
            100.0 * self.overall.1.ppw_gain,
            100.0 * self.overall.1.rsv,
            100.0 * wb
        )?;
        writeln!(
            f,
            "(paper: CHARSTAR hits 77.8% RSV on roms_s; Best RF < 1% everywhere)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(ppw: f64, rsv: f64) -> ModelEvaluation {
        ModelEvaluation {
            ppw_gain: ppw,
            rsv,
            ..ModelEvaluation::default()
        }
    }

    #[test]
    fn worst_rsv_scans_rows() {
        let fig = Fig9 {
            rows: vec![
                Fig9Row {
                    name: "a".into(),
                    charstar: eval(0.2, 0.05),
                    best_rf: eval(0.2, 0.01),
                },
                Fig9Row {
                    name: "roms".into(),
                    charstar: eval(0.1, 0.778),
                    best_rf: eval(0.2, 0.003),
                },
            ],
            overall: (eval(0.184, 0.109), eval(0.219, 0.003)),
        };
        let (c, b) = fig.worst_rsv();
        assert!((c - 0.778).abs() < 1e-12);
        assert!((b - 0.01).abs() < 1e-12);
        let text = fig.to_string();
        assert!(text.contains("roms"));
        assert!(text.contains("77.80%"));
    }
}
