//! Shared post-deployment evaluation: closed-loop emulation over paired
//! telemetry.
//!
//! Because the memory hierarchy is shared between cluster configurations
//! (DESIGN.md §1), a trace's behaviour in any mode sequence is composed
//! exactly from its two recorded fixed-mode runs. The emulator walks the
//! prediction windows, maintains the virtual cluster configuration with
//! the paper's t→t+2 application delay, charges each window the energy
//! and cycles of the mode it ran in, and scores predictions against
//! ground truth. (The real instruction-level closed loop lives in
//! [`crate::ClosedLoopRequest`] and is cross-validated against this
//! emulation in the integration tests.)

use crate::config::ExperimentConfig;
use crate::paired::{CorpusTelemetry, TraceTelemetry};
use crate::train::{violation_window, TrainedAdaptModel, HORIZON};
use psca_cpu::Mode;
use psca_ml::metrics::Confusion;

/// Aggregate post-deployment metrics of one model on one corpus slice.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModelEvaluation {
    /// PPW gain over the non-adaptive (always high-performance) CPU.
    pub ppw_gain: f64,
    /// Rate of SLA violations (Eq. 4).
    pub rsv: f64,
    /// Percentage of gating opportunities seized (Eq. 1).
    pub pgos: f64,
    /// Prediction accuracy.
    pub accuracy: f64,
    /// Average performance relative to the high-performance mode
    /// (cycles_hi / cycles_adaptive).
    pub avg_perf: f64,
    /// Fraction of windows spent in low-power mode.
    pub residency: f64,
    /// Number of evaluated prediction windows.
    pub windows: usize,
}

/// Per-application breakdown plus the overall aggregate.
#[derive(Debug, Clone, Default)]
pub struct PerAppEvaluation {
    /// `(application name, metrics)` rows in corpus order.
    pub per_app: Vec<(String, ModelEvaluation)>,
    /// Aggregate over all traces.
    pub overall: ModelEvaluation,
}

impl PerAppEvaluation {
    /// Looks up an application's metrics by name.
    pub fn app(&self, name: &str) -> Option<&ModelEvaluation> {
        self.per_app.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }
}

#[derive(Debug, Default, Clone)]
struct Accumulator {
    insts: u64,
    energy_adapt: f64,
    energy_hi: f64,
    cycles_adapt: u64,
    cycles_hi: u64,
    confusion: Confusion,
    violations: usize,
    windows: usize,
    low_windows: usize,
    total_windows: usize,
}

impl Accumulator {
    fn merge(&mut self, other: &Accumulator) {
        self.insts += other.insts;
        self.energy_adapt += other.energy_adapt;
        self.energy_hi += other.energy_hi;
        self.cycles_adapt += other.cycles_adapt;
        self.cycles_hi += other.cycles_hi;
        self.confusion.tp += other.confusion.tp;
        self.confusion.fp += other.confusion.fp;
        self.confusion.tn += other.confusion.tn;
        self.confusion.fn_ += other.confusion.fn_;
        self.violations += other.violations;
        self.windows += other.windows;
        self.low_windows += other.low_windows;
        self.total_windows += other.total_windows;
    }

    fn finish(&self) -> ModelEvaluation {
        let ppw_adapt = self.insts as f64 / self.energy_adapt.max(f64::MIN_POSITIVE);
        let ppw_hi = self.insts as f64 / self.energy_hi.max(f64::MIN_POSITIVE);
        ModelEvaluation {
            ppw_gain: ppw_adapt / ppw_hi - 1.0,
            rsv: if self.windows == 0 {
                0.0
            } else {
                self.violations as f64 / self.windows as f64
            },
            pgos: self.confusion.pgos(),
            accuracy: self.confusion.accuracy(),
            avg_perf: self.cycles_hi as f64 / (self.cycles_adapt.max(1)) as f64,
            residency: if self.total_windows == 0 {
                0.0
            } else {
                self.low_windows as f64 / self.total_windows as f64
            },
            windows: self.windows,
        }
    }
}

/// Emulates the closed loop of one model over one trace.
fn emulate_trace(
    model: &TrainedAdaptModel,
    trace: &TraceTelemetry,
    cfg: &ExperimentConfig,
    guardrail_cfg: Option<crate::guardrail::GuardrailConfig>,
) -> Accumulator {
    let mut guardrail = guardrail_cfg.map(|g| crate::guardrail::Guardrail::new(g, cfg.sla));
    let g = model.granularity;
    let agg = trace.aggregate(g);
    let labels = agg.labels(&cfg.sla);
    let n = agg.len();
    let mut acc = Accumulator::default();
    if n == 0 {
        return acc;
    }
    let mut mode = Mode::HighPerf;
    let mut scheduled: Vec<Option<Mode>> = vec![None; n + HORIZON + 1];
    let mut truth = Vec::with_capacity(n);
    let mut pred = Vec::with_capacity(n);
    for t in 0..n {
        if let Some(m) = scheduled[t] {
            mode = m;
        }
        acc.total_windows += 1;
        if mode == Mode::LowPower {
            acc.low_windows += 1;
        }
        acc.insts += agg.insts[t];
        acc.energy_hi += agg.energy_hi[t];
        acc.cycles_hi += agg.cycles_hi[t];
        match mode {
            Mode::HighPerf => {
                acc.energy_adapt += agg.energy_hi[t];
                acc.cycles_adapt += agg.cycles_hi[t];
            }
            Mode::LowPower => {
                acc.energy_adapt += agg.energy_lo[t];
                acc.cycles_adapt += agg.cycles_lo[t];
            }
        }
        // Telemetry of window t in the *current* mode → decision for t+2.
        let span = t * g..(t + 1) * g;
        let (rows, cycles) = match mode {
            Mode::HighPerf => (&trace.rows_hi[span.clone()], &trace.cycles_hi[span]),
            Mode::LowPower => (&trace.rows_lo[span.clone()], &trace.cycles_lo[span]),
        };
        let mut gate = model.try_predict(mode, rows, cycles).unwrap_or_else(|e| {
            // A firmware fault during trace emulation: fail safe (stay in
            // high-performance mode) and count it rather than panicking.
            psca_obs::counter("adapt.firmware.errors").inc();
            psca_obs::emit(
                psca_obs::Level::Warn,
                "adapt.firmware.error",
                &[("error", e.to_string().into()), ("window", t.into())],
            );
            false
        });
        if let Some(g) = guardrail.as_mut() {
            let ipc = match mode {
                Mode::HighPerf => agg.ipc_hi[t],
                Mode::LowPower => agg.ipc_lo[t],
            };
            gate = g.vet(mode == Mode::LowPower, ipc, gate);
        }
        scheduled[t + HORIZON] = Some(if gate { Mode::LowPower } else { Mode::HighPerf });
        if t + HORIZON < n {
            truth.push(labels[t + HORIZON]);
            pred.push(gate as u8);
        }
    }
    // Score the aligned prediction stream.
    let c = Confusion::from_predictions(&truth, &pred);
    acc.confusion = c;
    let w = violation_window(cfg, g);
    let mut i = 0;
    while i < truth.len() {
        let end = (i + w).min(truth.len());
        let fp = (i..end).filter(|&k| pred[k] == 1 && truth[k] == 0).count();
        if fp as f64 / (end - i) as f64 > 0.5 {
            acc.violations += 1;
            psca_obs::emit(
                psca_obs::Level::Warn,
                "sla.violation",
                &[
                    ("app", trace.app_name.as_str().into()),
                    ("window_start", i.into()),
                    ("false_gates", fp.into()),
                    ("window_len", (end - i).into()),
                ],
            );
            if psca_obs::trace::enabled() {
                psca_obs::trace::instant(
                    "sla.violation",
                    &[
                        ("app", trace.app_name.as_str().into()),
                        ("window_start", i.into()),
                        ("false_gates", fp.into()),
                    ],
                );
            }
        }
        acc.windows += 1;
        i = end;
    }
    // Counters are commutative (relaxed atomics), so they may be bumped
    // from whichever worker thread emulates this trace. The order-sensitive
    // accuracy *series* is pushed by the caller in corpus order.
    psca_obs::counter("adapt.sla.violations").add(acc.violations as u64);
    psca_obs::counter("adapt.eval.windows").add(acc.windows as u64);
    psca_obs::counter("adapt.windows").add(acc.total_windows as u64);
    psca_obs::counter("adapt.windows_gated_low").add(acc.low_windows as u64);
    psca_obs::counter("adapt.mispredictions").add(c.fp + c.fn_);
    psca_obs::counter("adapt.predictions").add(c.tp + c.fp + c.tn + c.fn_);
    acc
}

/// Evaluates a trained model on a corpus, producing per-application and
/// overall metrics.
pub fn evaluate_model_on_corpus(
    model: &TrainedAdaptModel,
    corpus: &CorpusTelemetry,
    cfg: &ExperimentConfig,
) -> PerAppEvaluation {
    evaluate_with_guardrail(model, corpus, cfg, None)
}

/// [`evaluate_model_on_corpus`] with an optional §3.1 fail-safe guardrail
/// vetting every gating decision.
pub fn evaluate_with_guardrail(
    model: &TrainedAdaptModel,
    corpus: &CorpusTelemetry,
    cfg: &ExperimentConfig,
    guardrail: Option<crate::guardrail::GuardrailConfig>,
) -> PerAppEvaluation {
    // Traces are independent: fan the emulation across the worker pool and
    // merge strictly in corpus order so the result (and every order-
    // sensitive metric) is bit-identical to a serial run.
    let sweep = psca_exec::Sweep::new("adapt.eval").jobs(cfg.jobs);
    let accs = sweep.run(corpus.traces.iter().collect(), |trace| {
        emulate_trace(model, trace, cfg, guardrail)
    });
    let accuracy = psca_obs::series_handle("adapt.eval.accuracy");
    let mut per_app: Vec<(String, Accumulator)> = Vec::new();
    let mut overall = Accumulator::default();
    for (trace, acc) in corpus.traces.iter().zip(accs) {
        let c = &acc.confusion;
        let preds = c.tp + c.fp + c.tn + c.fn_;
        if preds > 0 {
            accuracy.push((c.tp + c.tn) as f64 / preds as f64);
        }
        overall.merge(&acc);
        match per_app.iter_mut().find(|(n, _)| *n == trace.app_name) {
            Some((_, slot)) => slot.merge(&acc),
            None => per_app.push((trace.app_name.clone(), acc)),
        }
    }
    let overall = overall.finish();
    psca_obs::gauge("adapt.eval.last_ppw_gain").set(overall.ppw_gain);
    psca_obs::gauge("adapt.eval.last_rsv").set(overall.rsv);
    psca_obs::gauge("adapt.eval.last_accuracy").set(overall.accuracy);
    PerAppEvaluation {
        per_app: per_app.into_iter().map(|(n, a)| (n, a.finish())).collect(),
        overall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paired::collect_paired;
    use crate::train::ModelKind;
    use crate::zoo;
    use psca_workloads::{Archetype, PhaseGenerator};

    fn corpus() -> CorpusTelemetry {
        let mut traces = Vec::new();
        for (i, a) in [
            Archetype::DepChain,
            Archetype::ScalarIlp,
            Archetype::MemBound,
            Archetype::Balanced,
        ]
        .iter()
        .enumerate()
        {
            let mut gen = PhaseGenerator::new(a.center(), i as u64 + 50);
            traces.push(collect_paired(
                &mut gen,
                2_000,
                24,
                2_000,
                i as u32,
                a_name(*a),
                1,
            ));
        }
        CorpusTelemetry { traces }
    }

    fn a_name(a: Archetype) -> &'static str {
        match a {
            Archetype::DepChain => "dep",
            Archetype::ScalarIlp => "wide",
            Archetype::MemBound => "mem",
            _ => "bal",
        }
    }

    #[test]
    fn evaluation_produces_sane_metrics() {
        let corpus = corpus();
        let cfg = ExperimentConfig::quick();
        let model = zoo::train(ModelKind::BestRf, &corpus, &cfg);
        let eval = evaluate_model_on_corpus(&model, &corpus, &cfg);
        assert_eq!(eval.per_app.len(), 4);
        let o = &eval.overall;
        assert!(o.rsv >= 0.0 && o.rsv <= 1.0);
        assert!(o.pgos >= 0.0 && o.pgos <= 1.0);
        assert!(
            o.avg_perf > 0.5 && o.avg_perf <= 1.05,
            "avg perf {}",
            o.avg_perf
        );
        assert!(o.ppw_gain > -0.2 && o.ppw_gain < 1.0);
        assert!(o.windows > 0);
    }

    #[test]
    fn training_set_evaluation_gains_ppw_at_low_rsv() {
        let corpus = corpus();
        let cfg = ExperimentConfig::quick();
        let model = zoo::train(ModelKind::BestRf, &corpus, &cfg);
        let eval = evaluate_model_on_corpus(&model, &corpus, &cfg);
        assert!(
            eval.overall.ppw_gain > 0.02,
            "in-sample PPW gain too small: {}",
            eval.overall.ppw_gain
        );
        let dep = eval.app("dep").unwrap();
        let wide = eval.app("wide").unwrap();
        assert!(dep.residency > wide.residency);
    }

    #[test]
    fn oracle_like_model_has_high_pgos_on_dep_chain() {
        let corpus = corpus();
        let cfg = ExperimentConfig::quick();
        let model = zoo::train(ModelKind::BestRf, &corpus, &cfg);
        let eval = evaluate_model_on_corpus(&model, &corpus, &cfg);
        let dep = eval.app("dep").unwrap();
        assert!(dep.pgos > 0.5, "dep-chain PGOS {}", dep.pgos);
    }
}
