//! Figure 4: training-set diversity mitigates blindspots (§6.1).
//!
//! A 3-layer 32/32/16 MLP is trained on low-power-mode telemetry with
//! tuning sets of 1 … N applications; k-fold cross-validation (by
//! application) characterizes PGOS mean ± std and RSV on held-out
//! applications.
//!
//! RSV here is computed over the pooled validation stream of each fold
//! (windows may span trace boundaries); the deployment experiments
//! (Figures 8–9) compute it per trace, as the paper specifies for
//! evaluation. Pooling only matters for these design-time screens, where
//! relative ordering across configurations is what is read off the plot.

use crate::config::ExperimentConfig;
use crate::counters::TABLE4_COUNTERS;
use crate::paired::CorpusTelemetry;
use crate::train::{build_dataset, violation_window};
use psca_cpu::Mode;
use psca_ml::crossval::{group_folds, mean_std};
use psca_ml::metrics::{rate_of_sla_violations, Confusion};
use psca_ml::{Mlp, MlpConfig, Standardizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One point of the Figure 4 series.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Point {
    /// Applications in the tuning set.
    pub apps: usize,
    /// Mean validation PGOS across folds.
    pub pgos_mean: f64,
    /// Std of validation PGOS across folds.
    pub pgos_std: f64,
    /// Mean validation RSV across folds.
    pub rsv_mean: f64,
    /// Std of validation RSV across folds.
    pub rsv_std: f64,
}

/// The regenerated figure.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Series points in ascending tuning-set size.
    pub points: Vec<Fig4Point>,
}

/// Tuning-set sizes as fractions of the corpus (the paper sweeps 1→440 of
/// 593 applications; scaled corpora sweep the same fractions).
fn sweep_sizes(total_apps: usize) -> Vec<usize> {
    let fracs = [0.0023, 0.012, 0.034, 0.08, 0.17, 0.34, 0.5, 0.74];
    let mut sizes: Vec<usize> = fracs
        .iter()
        .map(|f| ((total_apps as f64 * f).round() as usize).max(1))
        .collect();
    sizes.dedup();
    sizes
}

/// Runs the diversity sweep.
pub fn run(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry) -> Fig4 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let events = TABLE4_COUNTERS.to_vec();
    let raw = build_dataset(hdtr, Mode::LowPower, &events, 1, &cfg.sla);
    let w = violation_window(cfg, 1);
    let folds = group_folds(raw.groups(), cfg.folds, 0.2, cfg.sub_seed("fig4"));
    let mlp_cfg = MlpConfig {
        hidden: vec![32, 32, 16],
        epochs: 20,
        ..MlpConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(cfg.sub_seed("fig4-subset"));
    let total_apps = raw.distinct_groups().len();
    let mut points = Vec::new();
    for apps in sweep_sizes(total_apps) {
        let mut pgos_vals = Vec::new();
        let mut rsv_vals = Vec::new();
        for (fi, fold) in folds.iter().enumerate() {
            // Restrict the tuning side to `apps` distinct applications.
            let tune_full = raw.subset(&fold.tune);
            let mut tune_apps = tune_full.distinct_groups();
            tune_apps.shuffle(&mut rng);
            tune_apps.truncate(apps);
            let keep: std::collections::HashSet<u32> = tune_apps.into_iter().collect();
            let idx: Vec<usize> = (0..tune_full.len())
                .filter(|&i| keep.contains(&tune_full.groups()[i]))
                .collect();
            if idx.is_empty() {
                continue;
            }
            let tune_raw = tune_full.subset(&idx);
            if tune_raw.positive_rate() == 0.0 || tune_raw.positive_rate() == 1.0 {
                // Degenerate single-class tuning set (possible at 1 app):
                // the model predicts the constant class.
                let constant = (tune_raw.positive_rate() == 1.0) as u8;
                let val = raw.subset(&fold.validate);
                let preds = vec![constant; val.len()];
                let c = Confusion::from_predictions(val.labels(), &preds);
                pgos_vals.push(c.pgos());
                rsv_vals.push(rate_of_sla_violations(val.labels(), &preds, w));
                continue;
            }
            let std = Standardizer::fit(&tune_raw);
            let tune = std.transform_dataset(&tune_raw);
            let val = std.transform_dataset(&raw.subset(&fold.validate));
            let mlp = Mlp::fit(&mlp_cfg, &tune, cfg.sub_seed("fig4-mlp") ^ fi as u64);
            let preds: Vec<u8> = (0..val.len())
                .map(|i| mlp.predict(val.sample(i).0) as u8)
                .collect();
            let c = Confusion::from_predictions(val.labels(), &preds);
            pgos_vals.push(c.pgos());
            rsv_vals.push(rate_of_sla_violations(val.labels(), &preds, w));
        }
        let (pm, ps) = mean_std(&pgos_vals);
        let (rm, rs) = mean_std(&rsv_vals);
        points.push(Fig4Point {
            apps,
            pgos_mean: pm,
            pgos_std: ps,
            rsv_mean: rm,
            rsv_std: rs,
        });
    }
    Fig4 { points }
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 4 — training-set diversity vs blindspots")?;
        writeln!(
            f,
            "{:>6} {:>10} {:>10} {:>10} {:>10}",
            "apps", "PGOS avg", "PGOS std", "RSV avg", "RSV std"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>6} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
                p.apps,
                100.0 * p.pgos_mean,
                100.0 * p.pgos_std,
                100.0 * p.rsv_mean,
                100.0 * p.rsv_std
            )?;
        }
        writeln!(
            f,
            "(paper: PGOS std 10.8% @20 apps -> 5.0% @440; RSV 7.1% -> 2.8%)"
        )
    }
}
