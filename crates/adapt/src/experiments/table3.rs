//! Table 3: microcontroller budgets and per-model-class inference cost,
//! memory footprint, and gating performance.

use crate::config::ExperimentConfig;
use crate::counters::{CHARSTAR_COUNTERS, TABLE4_COUNTERS};
use crate::paired::CorpusTelemetry;
use crate::train::build_dataset;
use psca_cpu::Mode;
use psca_ml::crossval::group_folds;
use psca_ml::metrics::Confusion;
use psca_ml::{
    Classifier, KernelSvm, LinearSvm, LogisticRegression, Mlp, MlpConfig, RandomForest,
    RandomForestConfig, Standardizer,
};
use psca_telemetry::Event;
use psca_uc::{ops_budget, BudgetRow, CpuSpec, FirmwareModel, McuSpec};

/// One model-class row of Table 3's right panel.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Model class and configuration.
    pub description: String,
    /// Number of input counters.
    pub inputs: usize,
    /// Measured firmware operations per prediction.
    pub ops: u64,
    /// Measured parameter storage in bytes.
    pub memory_bytes: u64,
    /// Validation PGOS (single held-out application split).
    pub pgos: f64,
    /// The paper's reported ops, for comparison.
    pub paper_ops: u64,
    /// The paper's reported PGOS, for comparison.
    pub paper_pgos: f64,
}

/// Regenerated Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Budget rows (exact arithmetic, matches the paper bit-for-bit).
    pub budget: Vec<BudgetRow>,
    /// Model-class rows, sorted by measured PGOS descending.
    pub models: Vec<ModelRow>,
}

/// Trains every §5 model class on low-power-mode telemetry and measures
/// firmware cost + validation PGOS.
pub fn run(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry) -> Table3 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let cpu = CpuSpec::paper();
    let mcu = McuSpec::paper();
    let budget = [10_000u64, 20_000, 30_000, 40_000, 50_000, 60_000, 100_000]
        .iter()
        .map(|&g| ops_budget(&cpu, &mcu, g))
        .collect();

    // One 80/20 by-application split for the PGOS column.
    let events: Vec<Event> = TABLE4_COUNTERS.to_vec();
    let raw = build_dataset(hdtr, Mode::LowPower, &events, 1, &cfg.sla);
    let folds = group_folds(raw.groups(), 1, 0.2, cfg.sub_seed("table3"));
    let tune_raw = raw.subset(&folds[0].tune);
    let val_raw = raw.subset(&folds[0].validate);
    let std = Standardizer::fit(&tune_raw);
    let tune = std.transform_dataset(&tune_raw);
    let val = std.transform_dataset(&val_raw);

    // The CHARSTAR row uses 8 expert counters.
    let raw8 = build_dataset(hdtr, Mode::LowPower, &CHARSTAR_COUNTERS, 1, &cfg.sla);
    let tune8_raw = raw8.subset(&folds[0].tune);
    let std8 = Standardizer::fit(&tune8_raw);
    let tune8 = std8.transform_dataset(&tune8_raw);
    let val8 = std8.transform_dataset(&raw8.subset(&folds[0].validate));

    // Model-family agnostic by construction: scoring sees only the
    // `Classifier` surface, never the concrete firmware variant.
    let pgos_of = |clf: &dyn Classifier, val: &psca_ml::Dataset| -> f64 {
        let preds: Vec<u8> = (0..val.len())
            .map(|i| clf.predict(val.sample(i).0) as u8)
            .collect();
        Confusion::from_predictions(val.labels(), &preds).pgos()
    };
    let seed = cfg.sub_seed("table3-models");

    // Each model class is an independent training cell: it carries its own
    // derived seed, so the pool can train the zoo concurrently while the
    // result vector keeps the original push order.
    type ModelCell<'a> = Box<dyn Fn() -> ModelRow + Send + Sync + 'a>;
    let cells: Vec<ModelCell> = vec![
        Box::new(|| {
            let fw = FirmwareModel::Mlp(Mlp::fit(
                &MlpConfig {
                    hidden: vec![32, 32, 16],
                    ..MlpConfig::default()
                },
                &tune,
                seed,
            ));
            row(
                &fw,
                "MLP 3 layers, 32/32/16 filters, ReLU",
                12,
                &val,
                6_162,
                0.8138,
                &pgos_of,
            )
        }),
        Box::new(|| {
            let fw = FirmwareModel::Forest({
                let mut rf = RandomForest::fit(
                    &RandomForestConfig {
                        num_trees: 1,
                        max_depth: 16,
                        min_leaf: 1,
                    },
                    &tune,
                    seed ^ 1,
                );
                rf.set_threshold(0.5);
                rf
            });
            row(
                &fw,
                "Decision Tree, max depth 16",
                12,
                &val,
                133,
                0.7778,
                &pgos_of,
            )
        }),
        // The χ² kernel assumes non-negative (histogram-like) inputs, so it
        // consumes the raw per-cycle counters rather than standardized ones.
        Box::new(|| {
            let fw = FirmwareModel::Chi2Svm(KernelSvm::fit_chi2(
                &tune_raw,
                1e-4,
                (tune_raw.len() * 4).min(12_000),
                1_000,
                seed ^ 2,
            ));
            row(
                &fw,
                "SVM, chi^2 kernel, <=1000 SVs",
                12,
                &val_raw,
                121_000,
                0.6754,
                &pgos_of,
            )
        }),
        Box::new(|| {
            let fw = FirmwareModel::Forest(RandomForest::fit(
                &RandomForestConfig {
                    num_trees: 16,
                    max_depth: 8,
                    min_leaf: 2,
                },
                &tune,
                seed ^ 3,
            ));
            row(
                &fw,
                "Random Forest, 16 trees, depth 8",
                12,
                &val,
                1_074,
                0.6667,
                &pgos_of,
            )
        }),
        Box::new(|| {
            let fw = FirmwareModel::Forest(RandomForest::fit(
                &RandomForestConfig::best_rf(),
                &tune,
                seed ^ 4,
            ));
            row(
                &fw,
                "Random Forest, 8 trees, depth 8",
                12,
                &val,
                538,
                0.6568,
                &pgos_of,
            )
        }),
        Box::new(|| {
            let fw = FirmwareModel::Mlp(Mlp::fit(&MlpConfig::best_mlp(), &tune, seed ^ 5));
            row(
                &fw,
                "MLP 3 layers, 8/8/4 filters, ReLU",
                12,
                &val,
                678,
                0.6099,
                &pgos_of,
            )
        }),
        Box::new(|| {
            let fw = FirmwareModel::Mlp(Mlp::fit(&MlpConfig::charstar(), &tune8, seed ^ 6));
            row(
                &fw,
                "MLP 1 layer, 10 filters (Ravi et al.)",
                8,
                &val8,
                292,
                0.5790,
                &pgos_of,
            )
        }),
        Box::new(|| {
            let fw = FirmwareModel::SvmEnsemble(LinearSvm::fit_ensemble(
                &tune,
                5,
                1e-3,
                (tune.len() * 8).min(20_000),
                seed ^ 7,
            ));
            row(
                &fw,
                "SVM, linear kernel, 5-ensemble",
                12,
                &val,
                412,
                0.5450,
                &pgos_of,
            )
        }),
        Box::new(|| {
            let fw = FirmwareModel::Logistic(LogisticRegression::fit(&tune, 1e-4, 150));
            row(&fw, "Logistic Regression", 12, &val, 158, 0.3833, &pgos_of)
        }),
        // Extension beyond the paper's zoo: gradient-boosted trees share the
        // forest's branch-free firmware kernel at lower depth.
        Box::new(|| {
            let fw = FirmwareModel::Gbdt(psca_ml::gbdt::Gbdt::fit(
                &psca_ml::gbdt::GbdtConfig::default(),
                &tune,
            ));
            row(
                &fw,
                "Gradient Boosted Trees 8x4 (extension)",
                12,
                &val,
                0,
                0.0,
                &pgos_of,
            )
        }),
    ];
    let mut models = psca_exec::Sweep::new("table3.models")
        .jobs(cfg.jobs)
        .run(cells, |cell| cell());

    models.sort_by(|a, b| {
        b.pgos
            .partial_cmp(&a.pgos)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Table3 { budget, models }
}

fn row(
    fw: &FirmwareModel,
    description: &str,
    inputs: usize,
    val: &psca_ml::Dataset,
    paper_ops: u64,
    paper_pgos: f64,
    pgos_of: &dyn Fn(&dyn Classifier, &psca_ml::Dataset) -> f64,
) -> ModelRow {
    ModelRow {
        description: description.to_string(),
        inputs,
        ops: fw.ops_per_prediction(inputs),
        memory_bytes: fw.memory_footprint_bytes(),
        pgos: pgos_of(fw, val),
        paper_ops,
        paper_pgos,
    }
}

impl std::fmt::Display for Table3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 3 — microcontroller budgets (CPU 16,000 MIPS / uC 500 MIPS, 50% duty)"
        )?;
        writeln!(
            f,
            "{:>12} {:>10} {:>10}",
            "granularity", "max ops", "budget"
        )?;
        for b in &self.budget {
            writeln!(
                f,
                "{:>12} {:>10} {:>10}",
                b.granularity, b.max_ops, b.budget
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:42} {:>3} {:>8} {:>10} {:>10} {:>7} {:>7}",
            "Model class", "in", "ops", "paper ops", "memory B", "PGOS", "paper"
        )?;
        for m in &self.models {
            let paper_ops = if m.paper_ops == 0 {
                "-".to_string()
            } else {
                m.paper_ops.to_string()
            };
            let paper_pgos = if m.paper_pgos == 0.0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * m.paper_pgos)
            };
            writeln!(
                f,
                "{:42} {:>3} {:>8} {:>10} {:>10} {:>6.1}% {:>7}",
                m.description,
                m.inputs,
                m.ops,
                paper_ops,
                m.memory_bytes,
                100.0 * m.pgos,
                paper_pgos
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paired::collect_paired;
    use psca_workloads::{Archetype, PhaseGenerator};

    #[test]
    fn table3_runs_and_preserves_cost_ordering() {
        let mut traces = Vec::new();
        for (i, a) in [
            Archetype::DepChain,
            Archetype::ScalarIlp,
            Archetype::MemBound,
            Archetype::Balanced,
            Archetype::Branchy,
        ]
        .iter()
        .enumerate()
        {
            let mut gen = PhaseGenerator::new(a.center(), i as u64 + 60);
            traces.push(collect_paired(&mut gen, 2_000, 16, 2_000, i as u32, "t", 1));
        }
        let corpus = CorpusTelemetry { traces };
        let cfg = ExperimentConfig::quick();
        let t = run(&cfg, &corpus);
        assert_eq!(t.budget[0].budget, 156);
        assert_eq!(t.models.len(), 10);
        let ops = |needle: &str| {
            t.models
                .iter()
                .find(|m| m.description.contains(needle))
                .unwrap()
                .ops
        };
        // The paper's cost ordering must hold (the χ² SVM's cost scales
        // with retained support vectors, so at test scale compare it with
        // the forest rather than the largest MLP).
        assert!(ops("chi^2") > ops("8 trees"));
        assert!(ops("32/32/16") > ops("8/8/4"));
        assert!(ops("8/8/4") > ops("Logistic"));
        assert!(ops("16 trees") > ops("8 trees"));
    }
}
