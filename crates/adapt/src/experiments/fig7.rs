//! Figure 7: ideal low-power residency per SPEC benchmark.
//!
//! With an oracle (ground-truth) gating policy at `P_SLA = 90%`, the
//! paper's applications would ideally spend 45.7% of runtime gated.

use crate::config::ExperimentConfig;
use crate::paired::CorpusTelemetry;

/// Regenerated Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(benchmark, ideal residency)` rows.
    pub per_benchmark: Vec<(String, f64)>,
    /// Interval-weighted average residency across the suite.
    pub average: f64,
}

/// Computes ideal residency from the paired SPEC telemetry.
pub fn run(cfg: &ExperimentConfig, spec: &CorpusTelemetry) -> Fig7 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let mut per: Vec<(String, u64, u64)> = Vec::new(); // name, gateable, total
    for trace in &spec.traces {
        let labels = trace.labels(&cfg.sla);
        let gateable = labels.iter().map(|&y| y as u64).sum::<u64>();
        let total = labels.len() as u64;
        match per.iter_mut().find(|(n, _, _)| *n == trace.app_name) {
            Some((_, g, t)) => {
                *g += gateable;
                *t += total;
            }
            None => per.push((trace.app_name.clone(), gateable, total)),
        }
    }
    let (sum_g, sum_t) = per
        .iter()
        .fold((0u64, 0u64), |(g, t), (_, pg, pt)| (g + pg, t + pt));
    Fig7 {
        per_benchmark: per
            .into_iter()
            .map(|(n, g, t)| (n, g as f64 / t.max(1) as f64))
            .collect(),
        average: sum_g as f64 / sum_t.max(1) as f64,
    }
}

impl std::fmt::Display for Fig7 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 7 — ideal low-power residency per benchmark")?;
        for (name, r) in &self.per_benchmark {
            writeln!(f, "{:20} {:>5.1}%", name, 100.0 * r)?;
        }
        writeln!(f, "average: {:.1}% (paper: 45.7%)", 100.0 * self.average)
    }
}
