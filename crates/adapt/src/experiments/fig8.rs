//! Figure 8: PPW gain and RSV of every adaptation model on SPEC2017 (§7.1).

use crate::config::ExperimentConfig;
use crate::experiments::eval::{evaluate_model_on_corpus, ModelEvaluation};
use crate::paired::CorpusTelemetry;
use crate::train::ModelKind;
use crate::zoo;
use psca_workloads::spec::SPEC_BENCHMARKS;

/// One model's summary row.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Model identity.
    pub kind: ModelKind,
    /// Overall metrics.
    pub overall: ModelEvaluation,
    /// Metrics over the integer suite.
    pub int_suite: ModelEvaluation,
    /// Metrics over the FP suite.
    pub fp_suite: ModelEvaluation,
    /// The paper's reported (PPW gain, RSV) for reference.
    pub paper: (f64, f64),
}

/// Regenerated Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// One row per evaluated model.
    pub rows: Vec<Fig8Row>,
}

fn suite_split(spec: &CorpusTelemetry) -> (CorpusTelemetry, CorpusTelemetry) {
    let fp_names: std::collections::HashSet<&str> = SPEC_BENCHMARKS
        .iter()
        .filter(|b| b.is_fp)
        .map(|b| b.name)
        .collect();
    let mut int_suite = CorpusTelemetry::default();
    let mut fp_suite = CorpusTelemetry::default();
    for t in &spec.traces {
        if fp_names.contains(t.app_name.as_str()) {
            fp_suite.traces.push(t.clone());
        } else {
            int_suite.traces.push(t.clone());
        }
    }
    (int_suite, fp_suite)
}

/// Trains all five models on HDTR and evaluates them on SPEC.
pub fn run(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry, spec: &CorpusTelemetry) -> Fig8 {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let (int_suite, fp_suite) = suite_split(spec);
    let kinds = [
        (ModelKind::SrchCoarse, (0.058, 0.038)),
        (ModelKind::SrchFine, (0.118, 0.003)),
        (ModelKind::Charstar, (0.184, 0.109)),
        (ModelKind::BestMlp, (0.206, 0.015)),
        (ModelKind::BestRf, (0.219, 0.003)),
    ];
    let rows = kinds
        .iter()
        .map(|&(kind, paper)| {
            let model = zoo::train(kind, hdtr, cfg);
            Fig8Row {
                kind,
                overall: evaluate_model_on_corpus(&model, spec, cfg).overall,
                int_suite: evaluate_model_on_corpus(&model, &int_suite, cfg).overall,
                fp_suite: evaluate_model_on_corpus(&model, &fp_suite, cfg).overall,
                paper,
            }
        })
        .collect();
    Fig8 { rows }
}

impl std::fmt::Display for Fig8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 8 — SPEC2017 PPW gain and RSV per adaptation model"
        )?;
        writeln!(
            f,
            "{:14} {:>9} {:>8} {:>9} {:>8} {:>9} {:>8} {:>16}",
            "model", "PPW", "RSV", "PPW int", "RSV int", "PPW fp", "RSV fp", "paper (PPW/RSV)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:14} {:>8.1}% {:>7.2}% {:>8.1}% {:>7.2}% {:>8.1}% {:>7.2}% {:>8.1}%/{:>5.2}%",
                r.kind.name(),
                100.0 * r.overall.ppw_gain,
                100.0 * r.overall.rsv,
                100.0 * r.int_suite.ppw_gain,
                100.0 * r.int_suite.rsv,
                100.0 * r.fp_suite.ppw_gain,
                100.0 * r.fp_suite.rsv,
                100.0 * r.paper.0,
                100.0 * r.paper.1
            )?;
        }
        Ok(())
    }
}
