//! Ablation benches for design choices called out in `DESIGN.md`:
//! steering policy, prediction horizon, and counter normalization.

use crate::config::ExperimentConfig;
use crate::counters::TABLE4_COUNTERS;
use crate::paired::CorpusTelemetry;
use crate::train::{build_dataset_with_horizon, violation_window};
use psca_cpu::{ClusterSim, CpuConfig, Mode, SteerPolicy};
use psca_ml::crossval::{group_folds, mean_std};
use psca_ml::metrics::{rate_of_sla_violations, Confusion};
use psca_ml::{RandomForest, RandomForestConfig, Standardizer};
use psca_telemetry::Event;
use psca_workloads::{Archetype, PhaseGenerator};

/// Steering-policy ablation: high-performance-mode IPC per archetype.
#[derive(Debug, Clone)]
pub struct SteeringAblation {
    /// `(archetype, dependence-aware IPC, round-robin IPC)` rows.
    pub rows: Vec<(Archetype, f64, f64)>,
}

/// Compares dependence-aware steering with blind round-robin.
pub fn steering(cfg: &ExperimentConfig) -> SteeringAblation {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let insts = 16 * cfg.interval_insts;
    let rows = [
        Archetype::ScalarIlp,
        Archetype::DepChain,
        Archetype::StreamFpWide,
        Archetype::Balanced,
    ]
    .iter()
    .map(|&a| {
        let ipc_for = |policy: SteerPolicy| {
            let mut cpu_cfg = CpuConfig::skylake_scaled();
            cpu_cfg.steer_policy = policy;
            let mut sim = ClusterSim::new(cpu_cfg);
            let mut gen = PhaseGenerator::new(a.center(), cfg.sub_seed("steer"));
            sim.warm_up(&mut gen, insts / 2);
            sim.run_interval(&mut gen, insts).map_or(0.0, |r| r.ipc())
        };
        (
            a,
            ipc_for(SteerPolicy::DependenceAware),
            ipc_for(SteerPolicy::RoundRobin),
        )
    })
    .collect();
    SteeringAblation { rows }
}

impl std::fmt::Display for SteeringAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation — steering policy (8-wide mode IPC)")?;
        writeln!(
            f,
            "{:16} {:>12} {:>12}",
            "archetype", "dep-aware", "round-robin"
        )?;
        for (a, d, r) in &self.rows {
            writeln!(f, "{:16} {:>12.2} {:>12.2}", format!("{a:?}"), d, r)?;
        }
        Ok(())
    }
}

/// Horizon / normalization ablation point.
#[derive(Debug, Clone)]
pub struct PredictionAblation {
    /// Variant label.
    pub label: String,
    /// Validation PGOS mean.
    pub pgos: f64,
    /// Validation RSV mean.
    pub rsv: f64,
    /// Validation accuracy mean.
    pub accuracy: f64,
}

fn crossval_rf(
    cfg: &ExperimentConfig,
    data: &psca_ml::Dataset,
    w: usize,
    tag: u64,
) -> (f64, f64, f64) {
    let folds = group_folds(
        data.groups(),
        cfg.folds.min(8),
        0.2,
        cfg.sub_seed("abl") ^ tag,
    );
    let mut pgos = Vec::new();
    let mut rsv = Vec::new();
    let mut acc = Vec::new();
    for (fi, fold) in folds.iter().enumerate() {
        let tune_raw = data.subset(&fold.tune);
        let std = Standardizer::fit(&tune_raw);
        let tune = std.transform_dataset(&tune_raw);
        let val = std.transform_dataset(&data.subset(&fold.validate));
        let rf = RandomForest::fit(&RandomForestConfig::best_rf(), &tune, tag ^ fi as u64);
        let preds: Vec<u8> = (0..val.len())
            .map(|i| rf.predict(val.sample(i).0) as u8)
            .collect();
        let c = Confusion::from_predictions(val.labels(), &preds);
        pgos.push(c.pgos());
        acc.push(c.accuracy());
        rsv.push(rate_of_sla_violations(val.labels(), &preds, w));
    }
    (mean_std(&pgos).0, mean_std(&rsv).0, mean_std(&acc).0)
}

/// Horizon ablation: reactive (t), no-compute-time (t+1), and the
/// paper's design point (t+2).
pub fn horizon(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry) -> Vec<PredictionAblation> {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let events: Vec<Event> = TABLE4_COUNTERS.to_vec();
    let w = violation_window(cfg, 1);
    [0usize, 1, 2]
        .iter()
        .map(|&h| {
            let data = build_dataset_with_horizon(hdtr, Mode::LowPower, &events, 1, &cfg.sla, h);
            let (pgos, rsv, accuracy) = crossval_rf(cfg, &data, w, h as u64);
            PredictionAblation {
                label: format!("predict t+{h}"),
                pgos,
                rsv,
                accuracy,
            }
        })
        .collect()
}

/// Normalization ablation: per-cycle-normalized counters (the paper's
/// choice, §4.1) vs raw per-interval counts.
pub fn normalization(cfg: &ExperimentConfig, hdtr: &CorpusTelemetry) -> Vec<PredictionAblation> {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let events: Vec<Event> = TABLE4_COUNTERS.to_vec();
    let w = violation_window(cfg, 1);
    let normalized = build_dataset_with_horizon(hdtr, Mode::LowPower, &events, 1, &cfg.sla, 2);
    // Raw counts: multiply each feature row by the interval's cycles.
    let mut raw_rows: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    let mut groups = Vec::new();
    for trace in &hdtr.traces {
        let t_labels = trace.labels(&cfg.sla);
        for t in 0..trace.len().saturating_sub(2) {
            let cyc = trace.cycles_lo[t] as f64;
            raw_rows.push(
                events
                    .iter()
                    .map(|e| trace.rows_lo[t][e.index()] * cyc)
                    .collect(),
            );
            labels.push(t_labels[t + 2]);
            groups.push(trace.app_id);
        }
    }
    let refs: Vec<&[f64]> = raw_rows.iter().map(|r| r.as_slice()).collect();
    let raw = psca_ml::Dataset::new(psca_ml::Matrix::from_rows(&refs), labels, groups);
    let (pn, rn, an) = crossval_rf(cfg, &normalized, w, 100);
    let (pr, rr, ar) = crossval_rf(cfg, &raw, w, 101);
    vec![
        PredictionAblation {
            label: "cycle-normalized counters".into(),
            pgos: pn,
            rsv: rn,
            accuracy: an,
        },
        PredictionAblation {
            label: "raw per-interval counts".into(),
            pgos: pr,
            rsv: rr,
            accuracy: ar,
        },
    ]
}

/// Cluster-width sensitivity: IPC of both modes as the per-cluster issue
/// width scales (the 4-wide cluster of the paper's design vs narrower and
/// wider alternatives).
#[derive(Debug, Clone)]
pub struct WidthAblation {
    /// `(cluster width, archetype, hi IPC, lo IPC)` rows.
    pub rows: Vec<(u32, Archetype, f64, f64)>,
}

/// Sweeps per-cluster issue width.
pub fn cluster_width(cfg: &ExperimentConfig) -> WidthAblation {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    let insts = 16 * cfg.interval_insts;
    let mut rows = Vec::new();
    for &width in &[2u32, 4, 6] {
        for &a in &[
            Archetype::ScalarIlp,
            Archetype::DepChain,
            Archetype::Balanced,
        ] {
            let ipc_for = |mode: Mode| {
                let mut cpu_cfg = CpuConfig::skylake_scaled();
                cpu_cfg.cluster_width = width;
                let mut sim = ClusterSim::new(cpu_cfg);
                sim.set_mode(mode);
                let mut gen = PhaseGenerator::new(a.center(), cfg.sub_seed("width"));
                sim.warm_up(&mut gen, insts / 2);
                sim.run_interval(&mut gen, insts).map_or(0.0, |r| r.ipc())
            };
            rows.push((width, a, ipc_for(Mode::HighPerf), ipc_for(Mode::LowPower)));
        }
    }
    WidthAblation { rows }
}

impl std::fmt::Display for WidthAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation — per-cluster issue width")?;
        writeln!(
            f,
            "{:>6} {:16} {:>8} {:>8} {:>8}",
            "width", "archetype", "hi IPC", "lo IPC", "ratio"
        )?;
        for (w, a, hi, lo) in &self.rows {
            writeln!(
                f,
                "{:>6} {:16} {:>8.2} {:>8.2} {:>8.3}",
                w,
                format!("{a:?}"),
                hi,
                lo,
                lo / hi.max(1e-12)
            )?;
        }
        Ok(())
    }
}

/// DVFS × cluster-gating complementarity (§2.1): energy and performance
/// of the four technique combinations over a corpus, with gating driven
/// by oracle labels so the comparison isolates the *architecture*.
#[derive(Debug, Clone)]
pub struct DvfsAblation {
    /// `(label, relative performance, PPW gain vs baseline)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

/// Measures DVFS-only, gating-only, and combined configurations against
/// the static high-performance baseline at the reference operating point.
pub fn dvfs(cfg: &ExperimentConfig, corpus: &CorpusTelemetry) -> DvfsAblation {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    use psca_cpu::{DvfsGovernor, DvfsModel};
    let model = DvfsModel::skylake_scaled();
    let llc = Event::LlcMisses.index();
    // Accumulators: (time_ns, energy, insts) per configuration.
    let mut acc = [(0.0f64, 0.0f64, 0u64); 4];
    for trace in &corpus.traces {
        let labels = trace.labels(&cfg.sla);
        let mut governor_hi = DvfsGovernor::new(model.clone(), 0.05);
        let mut governor_both = DvfsGovernor::new(model.clone(), 0.05);
        for (t, &label) in labels.iter().enumerate() {
            let gate = label == 1;
            let (cyc_hi, e_hi, miss_hi) = (
                trace.cycles_hi[t],
                trace.energy_hi[t],
                trace.rows_hi[t][llc],
            );
            let (cyc_g, e_g, miss_g) = if gate {
                (
                    trace.cycles_lo[t],
                    trace.energy_lo[t],
                    trace.rows_lo[t][llc],
                )
            } else {
                (cyc_hi, e_hi, miss_hi)
            };
            // (0) baseline: high-perf @ reference.
            let (t0, e0) = model.project_raw(cyc_hi, miss_hi, e_hi, model.reference());
            acc[0].0 += t0;
            acc[0].1 += e0;
            acc[0].2 += trace.insts[t];
            // (1) DVFS only: governor over high-perf intervals.
            let p = governor_hi.current();
            let (t1, e1) = model.project_raw(cyc_hi, miss_hi, e_hi, p);
            acc[1].0 += t1;
            acc[1].1 += e1;
            acc[1].2 += trace.insts[t];
            // Governor reacts to the observed interval for the next one.
            let fake = fake_interval(cyc_hi, miss_hi, e_hi, trace.insts[t]);
            governor_hi.step(&fake);
            // (2) gating only @ reference.
            let (t2, e2) = model.project_raw(cyc_g, miss_g, e_g, model.reference());
            acc[2].0 += t2;
            acc[2].1 += e2;
            acc[2].2 += trace.insts[t];
            // (3) both.
            let p = governor_both.current();
            let (t3, e3) = model.project_raw(cyc_g, miss_g, e_g, p);
            acc[3].0 += t3;
            acc[3].1 += e3;
            acc[3].2 += trace.insts[t];
            let fake = fake_interval(cyc_g, miss_g, e_g, trace.insts[t]);
            governor_both.step(&fake);
        }
    }
    let base_ppw = acc[0].2 as f64 / acc[0].1;
    let base_time = acc[0].0;
    let labels = [
        "baseline (hi @ ref)",
        "DVFS only",
        "gating only",
        "DVFS + gating",
    ];
    let rows = labels
        .iter()
        .zip(acc.iter())
        .map(|(l, &(t, e, i))| {
            (
                l.to_string(),
                base_time / t.max(1e-12),
                (i as f64 / e.max(1e-12)) / base_ppw - 1.0,
            )
        })
        .collect();
    DvfsAblation { rows }
}

/// Builds a minimal `IntervalResult` for governor feedback from raw
/// quantities (the governor only reads cycles, LLC rate, and energy).
fn fake_interval(
    cycles: u64,
    llc_per_cycle: f64,
    energy: f64,
    insts: u64,
) -> psca_cpu::IntervalResult {
    use psca_telemetry::CounterBank;
    let mut bank = CounterBank::new();
    bank.add(Event::Cycles, cycles);
    bank.add(Event::InstRetired, insts);
    bank.add(
        Event::LlcMisses,
        (llc_per_cycle * cycles as f64).round() as u64,
    );
    let snapshot = bank.snapshot_and_reset();
    psca_cpu::IntervalResult {
        snapshot,
        energy,
        mode: Mode::HighPerf,
        instructions: insts,
    }
}

impl std::fmt::Display for DvfsAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation — DVFS x cluster gating (oracle gating, 5% DVFS slack)"
        )?;
        writeln!(
            f,
            "{:22} {:>10} {:>10}",
            "configuration", "rel perf", "PPW gain"
        )?;
        for (l, perf, ppw) in &self.rows {
            writeln!(f, "{:22} {:>9.1}% {:>9.1}%", l, 100.0 * perf, 100.0 * ppw)?;
        }
        writeln!(
            f,
            "(the paper's §2.1 claim: gating still adds PPW on top of DVFS at V_min)"
        )
    }
}

/// Guardrail ablation row: one model with and without the §3.1 fail-safe.
#[derive(Debug, Clone)]
pub struct GuardrailAblation {
    /// `(model, without-guardrail, with-guardrail)` metric pairs.
    pub rows: Vec<(
        String,
        crate::experiments::eval::ModelEvaluation,
        crate::experiments::eval::ModelEvaluation,
    )>,
}

/// Measures how the fail-safe guardrail masks blindspots (RSV drops) at a
/// PPW cost — the reason the paper minimizes violations *before* relying
/// on guardrails ("so that guardrails may be set as permissively as
/// possible", §3.1).
pub fn guardrail(
    cfg: &ExperimentConfig,
    hdtr: &CorpusTelemetry,
    spec: &CorpusTelemetry,
) -> GuardrailAblation {
    // Scope global metrics/series to this experiment (see ISSUE 2).
    psca_obs::reset_all();
    use crate::experiments::eval::evaluate_with_guardrail;
    use crate::guardrail::GuardrailConfig;
    use crate::train::ModelKind;
    let rows = [ModelKind::Charstar, ModelKind::BestRf]
        .iter()
        .map(|&kind| {
            let model = crate::zoo::train(kind, hdtr, cfg);
            let without = evaluate_with_guardrail(&model, spec, cfg, None).overall;
            let with = evaluate_with_guardrail(&model, spec, cfg, Some(GuardrailConfig::default()))
                .overall;
            (kind.name().to_string(), without, with)
        })
        .collect();
    GuardrailAblation { rows }
}

impl std::fmt::Display for GuardrailAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation — fail-safe guardrail (SPEC test set)")?;
        writeln!(
            f,
            "{:14} {:>12} {:>12} {:>12} {:>12}",
            "model", "RSV w/o", "RSV with", "PPW w/o", "PPW with"
        )?;
        for (name, without, with) in &self.rows {
            writeln!(
                f,
                "{:14} {:>11.2}% {:>11.2}% {:>11.1}% {:>11.1}%",
                name,
                100.0 * without.rsv,
                100.0 * with.rsv,
                100.0 * without.ppw_gain,
                100.0 * with.ppw_gain
            )?;
        }
        Ok(())
    }
}

/// Formats ablation points as a table.
pub fn format_points(title: &str, points: &[PredictionAblation]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "Ablation — {title}");
    let _ = writeln!(
        s,
        "{:30} {:>8} {:>8} {:>9}",
        "variant", "PGOS", "RSV", "accuracy"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:30} {:>7.1}% {:>7.2}% {:>8.1}%",
            p.label,
            100.0 * p.pgos,
            100.0 * p.rsv,
            100.0 * p.accuracy
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_points_renders_rows() {
        let points = vec![
            PredictionAblation {
                label: "predict t+2".into(),
                pgos: 0.9,
                rsv: 0.01,
                accuracy: 0.95,
            },
            PredictionAblation {
                label: "predict t+0".into(),
                pgos: 0.95,
                rsv: 0.0,
                accuracy: 0.97,
            },
        ];
        let s = format_points("prediction horizon", &points);
        assert!(s.contains("prediction horizon"));
        assert!(s.contains("predict t+2"));
        assert!(s.contains("90.0%"));
    }

    #[test]
    fn steering_ablation_shows_dependence_awareness_wins() {
        let mut cfg = crate::ExperimentConfig::quick();
        cfg.interval_insts = 2_000;
        let result = steering(&cfg);
        assert_eq!(result.rows.len(), 4);
        // Averaged across archetypes, dependence-aware steering should
        // match or beat round-robin.
        let (mut dep, mut rr) = (0.0, 0.0);
        for (_, d, r) in &result.rows {
            dep += d;
            rr += r;
        }
        assert!(dep >= rr, "dep-aware {dep} vs round-robin {rr}");
        assert!(result.to_string().contains("round-robin"));
    }

    #[test]
    fn width_ablation_is_monotone_for_wide_code() {
        let mut cfg = crate::ExperimentConfig::quick();
        cfg.interval_insts = 2_000;
        let result = cluster_width(&cfg);
        let scalar_hi: Vec<f64> = result
            .rows
            .iter()
            .filter(|(_, a, _, _)| *a == Archetype::ScalarIlp)
            .map(|(_, _, hi, _)| *hi)
            .collect();
        assert_eq!(scalar_hi.len(), 3);
        assert!(
            scalar_hi[0] < scalar_hi[1],
            "wider clusters must help wide code"
        );
        assert!(scalar_hi[1] < scalar_hi[2]);
    }
}
