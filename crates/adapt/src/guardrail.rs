//! The fail-safe guardrail of §3.1.
//!
//! "While the final CPU design will implement a fail-safe guardrail, we
//! present all results assuming none; instead, we focus on minimizing SLA
//! violations so that guardrails may be set as permissively as possible."
//!
//! This module implements that guardrail so its interaction with model
//! quality can be measured (the `ablate-guardrail` bench): while gated,
//! the controller compares low-power IPC against an exponentially-weighted
//! estimate of recent high-performance IPC; if the SLA threshold is
//! breached for `trip_after` consecutive prediction windows, the CPU is
//! forced to high-performance mode for a `cooldown`, overriding the model.
//!
//! A guardrail masks the *symptoms* of a blindspot at a PPW cost: every
//! trip burns cooldown windows in high-performance mode even where gating
//! was safe, and the stale IPC reference mis-fires around phase changes —
//! which is exactly why the paper argues for fixing models rather than
//! leaning on guardrails.

use crate::sla::Sla;

/// Guardrail configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardrailConfig {
    /// Consecutive below-threshold gated windows before tripping.
    pub trip_after: usize,
    /// Windows forced to high-performance after a trip.
    pub cooldown: usize,
    /// EWMA smoothing factor for the high-performance IPC reference.
    pub alpha: f64,
    /// After this many consecutive gated windows, force one
    /// high-performance *probe* window to refresh the IPC reference —
    /// without probing, a stale reference from a different phase can hide
    /// sustained SLA violations entirely.
    pub probe_period: usize,
}

impl Default for GuardrailConfig {
    fn default() -> GuardrailConfig {
        GuardrailConfig {
            trip_after: 2,
            cooldown: 4,
            alpha: 0.5,
            probe_period: 8,
        }
    }
}

/// Runtime guardrail state.
#[derive(Debug, Clone)]
pub struct Guardrail {
    cfg: GuardrailConfig,
    sla: Sla,
    hi_ipc_estimate: Option<f64>,
    consecutive_breaches: usize,
    cooldown_left: usize,
    gated_streak: usize,
    trips: usize,
    probes: usize,
    /// Set when a probe has been issued: the next high-performance window
    /// *replaces* the IPC reference instead of EWMA-blending into it, so a
    /// probe after a phase change cannot leave a half-stale reference.
    refresh_pending: bool,
}

impl Guardrail {
    /// Creates a guardrail enforcing the given SLA.
    pub fn new(cfg: GuardrailConfig, sla: Sla) -> Guardrail {
        Guardrail {
            cfg,
            sla,
            hi_ipc_estimate: None,
            consecutive_breaches: 0,
            cooldown_left: 0,
            gated_streak: 0,
            trips: 0,
            probes: 0,
            refresh_pending: false,
        }
    }

    /// Windows of forced high-performance remaining in the current
    /// cooldown (0 when not tripped).
    pub fn cooldown_remaining(&self) -> usize {
        self.cooldown_left
    }

    /// Consecutive gated windows observed since the last ungated one.
    pub fn gated_streak(&self) -> usize {
        self.gated_streak
    }

    /// The current high-performance IPC reference, if one exists.
    pub fn reference(&self) -> Option<f64> {
        self.hi_ipc_estimate
    }

    /// Number of reference-refresh probes issued.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Number of times the guardrail has tripped.
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// Whether the guardrail is currently overriding the model.
    pub fn in_cooldown(&self) -> bool {
        self.cooldown_left > 0
    }

    /// Observes one completed prediction window and vets the model's next
    /// gating decision. `gated` is whether the window just observed ran in
    /// low-power mode; `ipc` its measured IPC; `wants_gate` the model's
    /// decision for the upcoming window. Returns the decision to apply.
    pub fn vet(&mut self, gated: bool, ipc: f64, wants_gate: bool) -> bool {
        if gated {
            self.gated_streak += 1;
            if let Some(ref_ipc) = self.hi_ipc_estimate {
                if ipc < self.sla.p_sla * ref_ipc {
                    self.consecutive_breaches += 1;
                } else {
                    self.consecutive_breaches = 0;
                }
                if self.consecutive_breaches >= self.cfg.trip_after {
                    self.trips += 1;
                    self.consecutive_breaches = 0;
                    self.cooldown_left = self.cfg.cooldown;
                    psca_obs::counter("adapt.guardrail.trips").inc();
                    psca_obs::series("adapt.guardrail.trips").push(self.trips as f64);
                    psca_obs::emit(
                        psca_obs::Level::Warn,
                        "guardrail.trip",
                        &[
                            ("trips", self.trips.into()),
                            ("ipc", ipc.into()),
                            ("ref_ipc", ref_ipc.into()),
                            ("cooldown", self.cfg.cooldown.into()),
                        ],
                    );
                    if psca_obs::trace::enabled() {
                        psca_obs::trace::instant(
                            "guardrail.trip",
                            &[
                                ("trips", self.trips.into()),
                                ("ipc", ipc.into()),
                                ("ref_ipc", ref_ipc.into()),
                            ],
                        );
                    }
                }
            }
        } else {
            // Refresh the high-performance reference. After a probe the
            // sample is authoritative: hard-reset rather than blend, so
            // the pre-probe phase cannot linger in the estimate.
            self.hi_ipc_estimate = Some(match self.hi_ipc_estimate {
                Some(est) if !self.refresh_pending => {
                    (1.0 - self.cfg.alpha) * est + self.cfg.alpha * ipc
                }
                _ => ipc,
            });
            self.refresh_pending = false;
            self.consecutive_breaches = 0;
            self.gated_streak = 0;
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return false; // force high-performance
        }
        if wants_gate && self.gated_streak >= self.cfg.probe_period {
            // Reference-refresh probe: one ungated window. The breach
            // streak resets with it — breaches judged against the stale
            // pre-probe reference must not combine with post-probe ones.
            self.gated_streak = 0;
            self.consecutive_breaches = 0;
            self.refresh_pending = true;
            self.probes += 1;
            psca_obs::counter("adapt.guardrail.probes").inc();
            psca_obs::emit(
                psca_obs::Level::Debug,
                "guardrail.probe",
                &[("probes", self.probes.into())],
            );
            return false;
        }
        wants_gate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guardrail() -> Guardrail {
        Guardrail::new(GuardrailConfig::default(), Sla::paper_default())
    }

    #[test]
    fn passes_through_when_sla_met() {
        let mut g = guardrail();
        assert!(g.vet(false, 4.0, true)); // hi window establishes reference
        for i in 0..10 {
            let decision = g.vet(true, 3.8, true);
            if i == 7 {
                // Streak hits the probe period: one refresh window.
                assert!(!decision, "probe expected at the streak limit");
                assert_eq!(g.probes(), 1);
                let _ = g.vet(false, 4.0, true); // the probe window itself
            } else {
                assert!(decision, "gated at 95% must pass (i = {i})");
            }
        }
        assert_eq!(g.trips(), 0);
    }

    #[test]
    fn trips_after_consecutive_breaches() {
        let mut g = guardrail();
        let _ = g.vet(false, 4.0, true);
        assert!(g.vet(true, 2.0, true)); // breach 1: not yet tripped
        let decision = g.vet(true, 2.0, true); // breach 2: trip
        assert!(!decision, "cooldown must force high-performance");
        assert_eq!(g.trips(), 1);
        assert!(g.in_cooldown());
    }

    #[test]
    fn cooldown_expires_and_model_regains_control() {
        let mut g = guardrail();
        let _ = g.vet(false, 4.0, true);
        let _ = g.vet(true, 1.0, true);
        let _ = g.vet(true, 1.0, true); // trip; cooldown = 4 (1 consumed)
        let mut forced = 0;
        for _ in 0..6 {
            if !g.vet(false, 4.0, true) {
                forced += 1;
            }
        }
        assert!((2..6).contains(&forced), "forced {forced} windows");
        assert!(!g.in_cooldown());
        assert!(g.vet(true, 3.9, true));
    }

    #[test]
    fn no_reference_means_no_trip_but_probes_fire() {
        let mut g = guardrail();
        // Gated from the start: no high-performance reference yet, so no
        // trips — but the probe mechanism still samples hi mode.
        let mut probes = 0;
        for _ in 0..10 {
            if !g.vet(true, 0.1, true) {
                probes += 1;
            }
        }
        assert_eq!(g.trips(), 0);
        assert_eq!(probes, g.probes());
        assert!(probes >= 1, "probe must fire within 10 gated windows");
    }

    #[test]
    fn isolated_breaches_are_forgiven() {
        let mut g = guardrail();
        let _ = g.vet(false, 4.0, true);
        for _ in 0..10 {
            let a = g.vet(true, 1.0, true); // breach
            let b = g.vet(false, 3.9, true); // recovery in hi resets counts
            assert!(a && b);
        }
        assert_eq!(g.trips(), 0);
        assert_eq!(g.probes(), 0, "streak resets prevent probes");
    }

    #[test]
    fn reference_tracks_phase_changes() {
        let mut g = guardrail();
        let _ = g.vet(false, 4.0, true);
        // A new, slower phase: hi windows re-teach the reference downward.
        for _ in 0..20 {
            let _ = g.vet(false, 1.0, true);
        }
        // Gating at IPC 0.95 against a ~1.0 reference is fine now.
        assert!(g.vet(true, 0.95, true));
        assert_eq!(g.trips(), 0);
    }
}
