//! SimPoint selection by basic-block-vector clustering (§4.1).
//!
//! The paper traces "200M-instruction SimPoints" per workload — the
//! SimPoint methodology picks *representative* regions: execution is
//! divided into intervals, each summarized by a basic-block vector (BBV,
//! the histogram of code executed), the BBVs are k-means clustered, and
//! the interval closest to each centroid is simulated in detail with its
//! cluster's population as weight.
//!
//! This module implements that pipeline over synthetic workloads: BBVs
//! are bucketed code-line visit histograms (no simulation needed — only
//! the instruction stream), clustered with `psca-ml`'s k-means.

use psca_ml::kmeans::kmeans;
use psca_ml::Matrix;
use psca_trace::TraceSource;

/// Dimensionality of the bucketed basic-block vectors.
pub const BBV_DIM: usize = 64;

/// One selected SimPoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Interval index (of `interval_insts`-sized intervals) where the
    /// representative region starts.
    pub start_interval: usize,
    /// Fraction of scanned execution the SimPoint represents.
    pub weight: f64,
}

/// Computes the bucketed BBV of one interval of an instruction stream.
/// Returns `None` if the source is exhausted before any instruction.
pub fn interval_bbv<S: TraceSource>(source: &mut S, interval_insts: u64) -> Option<[f64; BBV_DIM]> {
    let mut v = [0.0f64; BBV_DIM];
    let mut n = 0u64;
    for _ in 0..interval_insts {
        let Some(inst) = source.next_instruction() else {
            break;
        };
        let line = inst.pc >> 6;
        // Multiplicative hash into the bucketed BBV.
        let bucket = (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize;
        v[bucket] += 1.0;
        n += 1;
    }
    if n == 0 {
        return None;
    }
    for x in v.iter_mut() {
        *x /= n as f64;
    }
    Some(v)
}

/// Scans `scan_intervals` intervals of a workload, clusters their BBVs,
/// and returns `k` SimPoints sorted by start interval.
///
/// # Panics
/// Panics if `k == 0` or `interval_insts == 0`.
pub fn select_simpoints<S: TraceSource>(
    source: &mut S,
    interval_insts: u64,
    scan_intervals: usize,
    k: usize,
    seed: u64,
) -> Vec<SimPoint> {
    assert!(k >= 1, "need at least one SimPoint");
    assert!(interval_insts >= 1, "interval must be positive");
    let mut bbvs: Vec<Vec<f64>> = Vec::with_capacity(scan_intervals);
    for _ in 0..scan_intervals {
        match interval_bbv(source, interval_insts) {
            Some(v) => bbvs.push(v.to_vec()),
            None => break,
        }
    }
    if bbvs.is_empty() {
        return Vec::new();
    }
    let refs: Vec<&[f64]> = bbvs.iter().map(|r| r.as_slice()).collect();
    let data = Matrix::from_rows(&refs);
    let km = kmeans(&data, k.min(bbvs.len()), 100, seed);
    let total = bbvs.len() as f64;
    let mut points: Vec<SimPoint> = km
        .representatives(&data)
        .into_iter()
        .map(|r| SimPoint {
            start_interval: r,
            weight: km.sizes[km.assignment[r]] as f64 / total,
        })
        .collect();
    points.sort_by_key(|p| p.start_interval);
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use psca_workloads::{ApplicationModel, Archetype, Category, PhaseGenerator};

    #[test]
    fn bbv_is_a_distribution() {
        let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 1);
        let v = interval_bbv(&mut gen, 5_000).unwrap();
        let total: f64 = v.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn different_archetypes_have_different_bbvs() {
        let mut a = PhaseGenerator::new(Archetype::Balanced.center(), 1);
        let mut b = PhaseGenerator::new(Archetype::IcacheHeavy.center(), 1);
        let va = interval_bbv(&mut a, 5_000).unwrap();
        let vb = interval_bbv(&mut b, 5_000).unwrap();
        let d2: f64 = va.iter().zip(&vb).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!(d2 > 1e-4, "BBVs too similar: {d2}");
    }

    #[test]
    fn simpoints_cover_distinct_phases() {
        // A phase-structured application should yield SimPoints from
        // different regions, with weights summing to 1.
        let app = ApplicationModel::synth("sp", Category::HpcPerf, 5, 20_000);
        let mut src = app.trace(1);
        let points = select_simpoints(&mut src, 2_000, 100, 4, 9);
        assert!(!points.is_empty() && points.len() <= 4);
        let weight: f64 = points.iter().map(|p| p.weight).sum();
        assert!((weight - 1.0).abs() < 1e-9);
        // Starts are sorted and within the scan.
        for w in points.windows(2) {
            assert!(w[0].start_interval < w[1].start_interval);
        }
        assert!(points.iter().all(|p| p.start_interval < 100));
    }

    #[test]
    fn exhausted_source_yields_no_points() {
        let mut empty = psca_trace::VecTrace::default();
        assert!(select_simpoints(&mut empty, 1_000, 10, 3, 1).is_empty());
    }

    #[test]
    fn selection_is_deterministic() {
        let app = ApplicationModel::synth("sp", Category::Multimedia, 6, 10_000);
        let a = select_simpoints(&mut app.trace(2), 2_000, 50, 3, 4);
        let b = select_simpoints(&mut app.trace(2), 2_000, 50, 3, 4);
        assert_eq!(a, b);
    }
}
