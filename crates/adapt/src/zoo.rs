//! The adaptation-model zoo: every model evaluated in §7, trained through
//! the same pipeline the paper describes.

use crate::config::ExperimentConfig;
use crate::counters::{CHARSTAR_COUNTERS, SRCH_COUNTERS, TABLE4_COUNTERS};
use crate::paired::CorpusTelemetry;
use crate::train::{
    build_dataset, build_hist_windows, featurize_windows, fit_histogram_featurizer,
    fit_standard_featurizer, tune_threshold, violation_window, Featurizer, ModelKind,
    TrainedAdaptModel, THRESHOLD_TARGET_RSV,
};
use psca_cpu::Mode;
use psca_ml::{
    Classifier, Dataset, LogisticRegression, Mlp, MlpConfig, RandomForest, RandomForestConfig,
};
use psca_telemetry::Event;
use psca_uc::{ops_budget, CpuSpec, FirmwareModel, McuSpec};

/// Prediction granularities in base (10k-equivalent) intervals, from the
/// §7 budget analysis: CHARSTAR at 20k, SRCH and Best RF at 40k, Best MLP
/// at 50k.
pub fn granularity_intervals(kind: ModelKind, cfg: &ExperimentConfig) -> usize {
    match kind {
        ModelKind::Charstar => 2,
        ModelKind::SrchFine => 4,
        ModelKind::SrchCoarse => cfg.srch_coarse_intervals,
        ModelKind::BestRf => 4,
        ModelKind::BestMlp => 5,
    }
}

/// The counter set each model reads.
pub fn counter_set(kind: ModelKind) -> Vec<Event> {
    match kind {
        ModelKind::Charstar => CHARSTAR_COUNTERS.to_vec(),
        ModelKind::SrchFine | ModelKind::SrchCoarse => SRCH_COUNTERS.to_vec(),
        ModelKind::BestRf | ModelKind::BestMlp => TABLE4_COUNTERS.to_vec(),
    }
}

/// Trains one adaptation model (both mode predictors) on a training
/// corpus, tuning each predictor's sensitivity to keep tuning-set RSV at
/// or below 1% (§6.3).
pub fn train(
    kind: ModelKind,
    corpus: &CorpusTelemetry,
    cfg: &ExperimentConfig,
) -> TrainedAdaptModel {
    let events = counter_set(kind);
    // A model must see at least HORIZON+1 prediction windows per trace to
    // have any training samples; clamp coarse granularities accordingly
    // (relevant when scaled traces are shorter than SRCH's original
    // 10M-instruction interval).
    let max_g =
        corpus.traces.iter().map(|t| t.len()).min().unwrap_or(3) / (crate::train::HORIZON + 1);
    let g = granularity_intervals(kind, cfg).clamp(1, max_g.max(1));
    let w = violation_window(cfg, g);
    let _span = psca_obs::SpanTimer::start("adapt.train");
    let mut per_mode = Vec::with_capacity(2);
    for mode in [Mode::HighPerf, Mode::LowPower] {
        let round_start = std::time::Instant::now();
        let round = train_mode(kind, corpus, cfg, mode, &events, g, w);
        let wall_ns = round_start.elapsed().as_nanos() as u64;
        psca_obs::counter("adapt.train.rounds").inc();
        psca_obs::histogram("adapt.train.round_ns").record(wall_ns);
        if psca_obs::enabled(psca_obs::Level::Info) {
            psca_obs::emit(
                psca_obs::Level::Info,
                "train.round",
                &[
                    ("model", kind.name().into()),
                    ("mode", mode.to_string().into()),
                    ("wall_ms", (wall_ns as f64 / 1e6).into()),
                    ("granularity", g.into()),
                    (
                        "train_error",
                        round_error(&round, corpus, cfg, mode, g).into(),
                    ),
                ],
            );
        }
        if psca_obs::trace::enabled() {
            psca_obs::trace::instant(
                "train.round",
                &[
                    ("model", kind.name().into()),
                    ("mode", mode.to_string().into()),
                    ("wall_ms", (wall_ns as f64 / 1e6).into()),
                ],
            );
        }
        per_mode.push(round);
    }
    let (feat_lo, fw_lo) = per_mode.pop().unwrap();
    let (feat_hi, fw_hi) = per_mode.pop().unwrap();
    let ops = fw_input_dim(&feat_hi)
        .map(|d| fw_hi.ops_per_prediction(d))
        .unwrap_or(0);
    TrainedAdaptModel {
        kind,
        feat_hi,
        feat_lo,
        fw_hi,
        fw_lo,
        granularity: g,
        ops_per_prediction: ops,
    }
}

/// In-sample misclassification rate of a freshly-trained mode predictor —
/// the "loss" reported in `train.round` events. Only computed when the
/// event would actually be delivered.
fn round_error(
    round: &(Featurizer, FirmwareModel),
    corpus: &CorpusTelemetry,
    cfg: &ExperimentConfig,
    mode: Mode,
    g: usize,
) -> f64 {
    let (feat, fw) = round;
    let data = featurize_windows(feat, corpus, mode, g, &cfg.training_sla());
    if data.is_empty() {
        return 0.0;
    }
    // Dispatch through the unified trait: the loss computation never needs
    // to know which model family the round trained.
    let clf: &dyn Classifier = fw;
    let wrong = (0..data.len())
        .filter(|&i| clf.predict(data.features().row(i)) as u8 != data.labels()[i])
        .count();
    wrong as f64 / data.len() as f64
}

fn fw_input_dim(feat: &Featurizer) -> Option<usize> {
    match feat {
        Featurizer::Standard { events, .. } => Some(events.len()),
        Featurizer::Histogram { featurizer, .. } => Some(featurizer.feature_dim()),
    }
}

fn train_mode(
    kind: ModelKind,
    corpus: &CorpusTelemetry,
    cfg: &ExperimentConfig,
    mode: Mode,
    events: &[Event],
    g: usize,
    w: usize,
) -> (Featurizer, FirmwareModel) {
    match kind {
        ModelKind::SrchFine | ModelKind::SrchCoarse => {
            let (windows, _, _) = build_hist_windows(corpus, mode, events, g, &cfg.training_sla());
            let feat = fit_histogram_featurizer(events, &windows);
            let data = featurize_windows(&feat, corpus, mode, g, &cfg.training_sla());
            let (fit_set, cal_set) = calibration_split(&data, cfg);
            let lr = LogisticRegression::fit(&fit_set, 1e-4, 150);
            let mut fw = FirmwareModel::Logistic(lr);
            tune_threshold(
                &mut fw,
                cal_set.features(),
                cal_set.labels(),
                w,
                THRESHOLD_TARGET_RSV,
            );
            (feat, fw)
        }
        _ => {
            let raw = build_dataset(corpus, mode, events, g, &cfg.training_sla());
            let feat = fit_standard_featurizer(events, &raw);
            let data = featurize_windows(&feat, corpus, mode, g, &cfg.training_sla());
            let (fit_set, cal_set) = calibration_split(&data, cfg);
            let mut fw = match kind {
                ModelKind::BestRf => FirmwareModel::Forest(RandomForest::fit(
                    &RandomForestConfig::best_rf(),
                    &fit_set,
                    cfg.sub_seed("rf") ^ mode_tag(mode),
                )),
                ModelKind::BestMlp => FirmwareModel::Mlp(Mlp::fit(
                    &MlpConfig::best_mlp(),
                    &fit_set,
                    cfg.sub_seed("mlp") ^ mode_tag(mode),
                )),
                ModelKind::Charstar => FirmwareModel::Mlp(Mlp::fit(
                    &MlpConfig::charstar(),
                    &fit_set,
                    cfg.sub_seed("charstar") ^ mode_tag(mode),
                )),
                _ => unreachable!(),
            };
            tune_threshold(
                &mut fw,
                cal_set.features(),
                cal_set.labels(),
                w,
                THRESHOLD_TARGET_RSV,
            );
            (feat, fw)
        }
    }
}

/// Splits tuning data by application into a fit set and a calibration set
/// for sensitivity tuning. Tuning the decision threshold on *held-out*
/// applications is essential for models that can memorize their tuning
/// samples (forests): their in-sample RSV is always ~0, which would leave
/// thresholds at their most aggressive setting.
fn calibration_split(
    data: &psca_ml::Dataset,
    cfg: &ExperimentConfig,
) -> (psca_ml::Dataset, psca_ml::Dataset) {
    if data.distinct_groups().len() < 3 {
        // Too few applications to split: calibrate in-sample.
        return (data.clone(), data.clone());
    }
    let folds = psca_ml::crossval::group_folds(data.groups(), 1, 0.2, cfg.sub_seed("calib"));
    (data.subset(&folds[0].tune), data.subset(&folds[0].validate))
}

fn mode_tag(mode: Mode) -> u64 {
    match mode {
        Mode::HighPerf => 0x1111,
        Mode::LowPower => 0x2222,
    }
}

/// Trains a model with explicit hyperparameters and counters (used by the
/// hyperparameter screen of Figure 6 and the ablation of Figure 10).
pub fn train_custom_mlp(
    corpus: &CorpusTelemetry,
    cfg: &ExperimentConfig,
    events: &[Event],
    hidden: &[usize],
    g: usize,
    seed: u64,
) -> TrainedAdaptModel {
    let w = violation_window(cfg, g);
    let mlp_cfg = MlpConfig {
        hidden: hidden.to_vec(),
        ..MlpConfig::default()
    };
    let mut per_mode = Vec::with_capacity(2);
    for mode in [Mode::HighPerf, Mode::LowPower] {
        let raw = build_dataset(corpus, mode, events, g, &cfg.training_sla());
        let feat = fit_standard_featurizer(events, &raw);
        let data = featurize_windows(&feat, corpus, mode, g, &cfg.training_sla());
        let mut fw = FirmwareModel::Mlp(Mlp::fit(&mlp_cfg, &data, seed ^ mode_tag(mode)));
        tune_threshold(
            &mut fw,
            data.features(),
            data.labels(),
            w,
            THRESHOLD_TARGET_RSV,
        );
        per_mode.push((feat, fw));
    }
    let (feat_lo, fw_lo) = per_mode.pop().unwrap();
    let (feat_hi, fw_hi) = per_mode.pop().unwrap();
    let ops = fw_hi.ops_per_prediction(events.len());
    TrainedAdaptModel {
        kind: ModelKind::BestMlp,
        feat_hi,
        feat_lo,
        fw_hi,
        fw_lo,
        granularity: g,
        ops_per_prediction: ops,
    }
}

/// Trains a Best-RF-style model on a pre-built dataset pair (used by the
/// application-specific retraining of §7.3, where tuning sets are custom).
#[allow(clippy::too_many_arguments)] // mirrors the §7.3 retraining recipe
pub fn train_rf_from_datasets(
    rf_cfg: &RandomForestConfig,
    data_hi: &Dataset,
    data_lo: &Dataset,
    feat_hi: Featurizer,
    feat_lo: Featurizer,
    g: usize,
    w: usize,
    seed: u64,
) -> TrainedAdaptModel {
    let mut fw_hi = FirmwareModel::Forest(RandomForest::fit(rf_cfg, data_hi, seed ^ 0x1111));
    tune_threshold(
        &mut fw_hi,
        data_hi.features(),
        data_hi.labels(),
        w,
        THRESHOLD_TARGET_RSV,
    );
    let mut fw_lo = FirmwareModel::Forest(RandomForest::fit(rf_cfg, data_lo, seed ^ 0x2222));
    tune_threshold(
        &mut fw_lo,
        data_lo.features(),
        data_lo.labels(),
        w,
        THRESHOLD_TARGET_RSV,
    );
    let ops = fw_hi.ops_per_prediction(data_hi.dim());
    TrainedAdaptModel {
        kind: ModelKind::BestRf,
        feat_hi,
        feat_lo,
        fw_hi,
        fw_lo,
        granularity: g,
        ops_per_prediction: ops,
    }
}

/// Trains one half-forest on a corpus in an existing feature space (the
/// building block of §7.3's application-specific combination).
pub fn train_rf_half(
    cfg: &ExperimentConfig,
    corpus: &CorpusTelemetry,
    feat: &Featurizer,
    mode: Mode,
    g: usize,
    rf_cfg: &RandomForestConfig,
    seed: u64,
) -> RandomForest {
    let data = featurize_windows(feat, corpus, mode, g, &cfg.training_sla());
    RandomForest::fit(rf_cfg, &data, cfg.sub_seed("rf-half") ^ seed)
}

/// Checks a model against the Table 3 budget at its granularity, using
/// the paper's CPU/µC specs (granularity expressed in paper-equivalent
/// instructions: `g × 10k`).
pub fn fits_budget(model: &TrainedAdaptModel) -> bool {
    let row = ops_budget(
        &CpuSpec::paper(),
        &McuSpec::paper(),
        model.granularity as u64 * 10_000,
    );
    let headroom = 1.0 - model.ops_per_prediction as f64 / row.budget.max(1) as f64;
    psca_obs::gauge("uc.budget.headroom").set(headroom);
    if psca_obs::enabled(psca_obs::Level::Debug) {
        psca_obs::emit(
            psca_obs::Level::Debug,
            "uc.budget.check",
            &[
                ("model", model.kind.name().into()),
                ("ops", model.ops_per_prediction.into()),
                ("budget", row.budget.into()),
                ("headroom", headroom.into()),
            ],
        );
    }
    model.ops_per_prediction <= row.budget
}

#[cfg(test)]
mod tests {
    use super::*;
    use psca_workloads::{Archetype, PhaseGenerator};

    fn tiny_corpus() -> CorpusTelemetry {
        let mut traces = Vec::new();
        let kinds = [
            Archetype::DepChain,
            Archetype::ScalarIlp,
            Archetype::MemBound,
            Archetype::Balanced,
        ];
        for (i, a) in kinds.iter().enumerate() {
            let mut gen = PhaseGenerator::new(a.center(), i as u64 + 10);
            traces.push(crate::collect_paired(
                &mut gen, 2_000, 20, 2_000, i as u32, "t", 1,
            ));
        }
        CorpusTelemetry { traces }
    }

    #[test]
    fn all_zoo_models_train_and_predict() {
        let corpus = tiny_corpus();
        let cfg = ExperimentConfig::quick();
        for kind in [ModelKind::BestRf, ModelKind::Charstar, ModelKind::SrchFine] {
            let model = train(kind, &corpus, &cfg);
            assert_eq!(model.kind, kind);
            assert!(model.ops_per_prediction > 0);
            let trace = &corpus.traces[0];
            let g = model.granularity;
            let decision =
                model.predict(Mode::HighPerf, &trace.rows_hi[0..g], &trace.cycles_hi[0..g]);
            let _ = decision;
        }
    }

    #[test]
    fn best_rf_learns_the_corpus() {
        let corpus = tiny_corpus();
        let cfg = ExperimentConfig::quick();
        let model = train(ModelKind::BestRf, &corpus, &cfg);
        // On the (training) corpus, gating decisions should track the
        // gateability of the archetypes: DepChain gates, ScalarIlp not.
        let g = model.granularity;
        let dep = &corpus.traces[0];
        let wide = &corpus.traces[1];
        let count_gates = |t: &crate::TraceTelemetry| {
            let n = t.len() / g;
            (0..n)
                .filter(|&k| {
                    model.predict(
                        Mode::LowPower,
                        &t.rows_lo[k * g..(k + 1) * g],
                        &t.cycles_lo[k * g..(k + 1) * g],
                    )
                })
                .count() as f64
                / n as f64
        };
        let dep_rate = count_gates(dep);
        let wide_rate = count_gates(wide);
        assert!(
            dep_rate > wide_rate,
            "DepChain gate rate {dep_rate} should exceed ScalarIlp {wide_rate}"
        );
    }

    #[test]
    fn paper_models_fit_their_budgets() {
        let corpus = tiny_corpus();
        let cfg = ExperimentConfig::quick();
        for kind in [ModelKind::BestRf, ModelKind::Charstar] {
            let model = train(kind, &corpus, &cfg);
            assert!(
                fits_budget(&model),
                "{kind:?}: {} ops exceeds budget at g={}",
                model.ops_per_prediction,
                model.granularity
            );
        }
    }

    #[test]
    fn granularities_match_section7() {
        let cfg = ExperimentConfig::quick();
        assert_eq!(granularity_intervals(ModelKind::Charstar, &cfg), 2);
        assert_eq!(granularity_intervals(ModelKind::BestRf, &cfg), 4);
        assert_eq!(granularity_intervals(ModelKind::BestMlp, &cfg), 5);
        assert_eq!(granularity_intervals(ModelKind::SrchFine, &cfg), 4);
    }
}
