//! Experiment-grid configuration.
//!
//! The paper's datasets total tens of billions of simulated instructions;
//! this reproduction scales trace lengths and the SLA window down so the
//! full grid runs on a laptop while preserving every structural ratio
//! (the t→t+2 horizon, ops budgets per interval, window formula, corpus
//! category proportions). `EXPERIMENTS.md` records the scaling.

use crate::sla::Sla;
use psca_cpu::BackendChoice;
use std::fmt;

/// A validation failure from [`ExperimentConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `interval_insts == 0`: the telemetry interval must make progress.
    ZeroInterval,
    /// `folds < 2`: cross-validation needs at least a train and a
    /// validate side.
    TooFewFolds(usize),
    /// A corpus dimension is zero, so the corpus would be empty (names
    /// the offending knob).
    EmptyCorpusDimension(&'static str),
    /// A backend name that names no known simulation fidelity.
    UnknownBackend(String),
    /// A verdict-bearing path (benchmark gate, paper-table check) was
    /// asked to run on a non-reference fidelity.
    NonReferenceBackend(BackendChoice),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroInterval => write!(f, "interval_insts must be nonzero"),
            ConfigError::TooFewFolds(n) => {
                write!(f, "cross-validation needs at least 2 folds, got {n}")
            }
            ConfigError::EmptyCorpusDimension(what) => {
                write!(f, "corpus dimension `{what}` must be nonzero")
            }
            ConfigError::UnknownBackend(name) => {
                write!(
                    f,
                    "unknown backend {name:?} (expected cycle_accurate or surrogate)"
                )
            }
            ConfigError::NonReferenceBackend(b) => {
                write!(
                    f,
                    "backend `{b}` is not allowed here: verdict-bearing paths \
                     require the reference cycle_accurate fidelity"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// All scale knobs for dataset generation and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Master seed; every derived seed is a deterministic function of it.
    pub seed: u64,
    /// Telemetry interval in instructions (the paper's base is 10k).
    pub interval_insts: u64,
    /// Number of HDTR applications to synthesize (paper: 593).
    pub hdtr_apps: usize,
    /// Maximum traces used per HDTR application.
    pub hdtr_traces_per_app: usize,
    /// Measured intervals per HDTR trace.
    pub hdtr_intervals_per_trace: usize,
    /// Mean phase dwell of HDTR applications, instructions.
    pub hdtr_phase_len: u64,
    /// Warmup instructions before measuring each HDTR trace.
    pub hdtr_warmup_insts: u64,
    /// Measured intervals per SPEC SimPoint (paper: 200M instructions).
    pub spec_intervals_per_simpoint: usize,
    /// Mean phase dwell of SPEC benchmarks, instructions.
    pub spec_phase_len: u64,
    /// Warmup instructions before each SimPoint window.
    pub spec_warmup_insts: u64,
    /// Maximum SimPoints per SPEC workload (caps the 571 total).
    pub spec_max_simpoints_per_workload: usize,
    /// The deployment SLA.
    pub sla: Sla,
    /// Coarse SRCH granularity in intervals (stands in for the paper's
    /// 10M-instruction original interval).
    pub srch_coarse_intervals: usize,
    /// Cross-validation folds (paper: 32).
    pub folds: usize,
    /// Training guard band: labels used for *training* are computed at
    /// `P_SLA + guard` so deployed decisions carry slack against
    /// borderline intervals (evaluation always uses the contractual SLA).
    pub label_guard_band: f64,
    /// Worker threads for parallel sweeps (`psca-exec`). `0` = auto
    /// (`PSCA_JOBS` or `available_parallelism`). Results are bit-identical
    /// regardless of the value — cells carry their own seeds and merge in
    /// cell order.
    pub jobs: usize,
    /// Persistent sweep result cache directory, `None` to disable.
    /// Repeated `repro` invocations skip already-simulated corpus cells.
    pub sweep_cache: Option<std::path::PathBuf>,
    /// Simulation fidelity for telemetry collection and closed loops.
    /// The default is the reference [`BackendChoice::CycleAccurate`];
    /// sweeps and fleet harnesses opt into the surrogate explicitly, and
    /// every artifact records which fidelity produced it.
    pub backend: BackendChoice,
}

impl ExperimentConfig {
    /// A minutes-scale configuration for the full reproduction run
    /// (`repro -- all`); release-mode recommended.
    pub fn full() -> ExperimentConfig {
        ExperimentConfig {
            seed: 0x15CA_2019,
            interval_insts: 10_000,
            hdtr_apps: 440,
            hdtr_traces_per_app: 3,
            hdtr_intervals_per_trace: 40,
            hdtr_phase_len: 100_000,
            hdtr_warmup_insts: 10_000,
            spec_intervals_per_simpoint: 160,
            spec_phase_len: 200_000,
            spec_warmup_insts: 10_000,
            spec_max_simpoints_per_workload: 2,
            sla: Sla::paper_default().with_t_sla_insts(640_000),
            srch_coarse_intervals: 16,
            folds: 32,
            label_guard_band: 0.02,
            jobs: 0,
            sweep_cache: Some(psca_exec::SweepCache::default_dir()),
            backend: BackendChoice::CycleAccurate,
        }
    }

    /// A seconds-scale configuration for tests and examples.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            seed: 7,
            interval_insts: 2_000,
            hdtr_apps: 24,
            hdtr_traces_per_app: 2,
            hdtr_intervals_per_trace: 16,
            hdtr_phase_len: 12_000,
            hdtr_warmup_insts: 2_000,
            spec_intervals_per_simpoint: 16,
            spec_phase_len: 16_000,
            spec_warmup_insts: 2_000,
            spec_max_simpoints_per_workload: 1,
            sla: Sla::paper_default().with_t_sla_insts(16_000),
            srch_coarse_intervals: 8,
            folds: 8,
            label_guard_band: 0.02,
            // Tests default to serial + uncached: bit-identity with
            // parallel runs is asserted by dedicated regression tests,
            // and unit tests must not touch a shared on-disk cache.
            jobs: 1,
            sweep_cache: None,
            backend: BackendChoice::CycleAccurate,
        }
    }

    /// Instructions per HDTR trace (excluding warmup).
    pub fn hdtr_trace_insts(&self) -> u64 {
        self.interval_insts * self.hdtr_intervals_per_trace as u64
    }

    /// Instructions per SPEC SimPoint window (excluding warmup).
    pub fn spec_window_insts(&self) -> u64 {
        self.interval_insts * self.spec_intervals_per_simpoint as u64
    }

    /// The SLA used to compute *training* labels: the contractual SLA
    /// tightened by the guard band.
    pub fn training_sla(&self) -> Sla {
        self.sla
            .with_p_sla((self.sla.p_sla + self.label_guard_band).min(1.0))
    }

    /// A validating builder seeded from [`ExperimentConfig::quick`].
    ///
    /// Struct-literal construction (and `..ExperimentConfig::quick()`
    /// update syntax) keeps working; the builder is for call sites that
    /// take knobs from external input — CLI flags, serving requests — and
    /// need typed [`ConfigError`]s instead of downstream panics.
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            cfg: ExperimentConfig::quick(),
            backend_error: None,
        }
    }

    /// Deterministic sub-seed for a named component.
    pub fn sub_seed(&self, tag: &str) -> u64 {
        let mut h: u64 = self.seed ^ 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig::quick()
    }
}

/// Builder returned by [`ExperimentConfig::builder`].
///
/// Starts from the [`quick`](ExperimentConfig::quick) preset; every
/// setter overrides one knob and [`build`](ExperimentConfigBuilder::build)
/// validates the combination.
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    cfg: ExperimentConfig,
    backend_error: Option<ConfigError>,
}

impl ExperimentConfigBuilder {
    /// Starts from an arbitrary base configuration instead of `quick()`.
    pub fn from_base(cfg: ExperimentConfig) -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            cfg,
            backend_error: None,
        }
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Telemetry interval in instructions.
    pub fn interval_insts(mut self, n: u64) -> Self {
        self.cfg.interval_insts = n;
        self
    }

    /// Number of HDTR applications to synthesize.
    pub fn hdtr_apps(mut self, n: usize) -> Self {
        self.cfg.hdtr_apps = n;
        self
    }

    /// Traces used per HDTR application.
    pub fn hdtr_traces_per_app(mut self, n: usize) -> Self {
        self.cfg.hdtr_traces_per_app = n;
        self
    }

    /// Measured intervals per HDTR trace.
    pub fn hdtr_intervals_per_trace(mut self, n: usize) -> Self {
        self.cfg.hdtr_intervals_per_trace = n;
        self
    }

    /// Measured intervals per SPEC SimPoint.
    pub fn spec_intervals_per_simpoint(mut self, n: usize) -> Self {
        self.cfg.spec_intervals_per_simpoint = n;
        self
    }

    /// Cross-validation folds.
    pub fn folds(mut self, n: usize) -> Self {
        self.cfg.folds = n;
        self
    }

    /// Worker threads for parallel sweeps (`0` = auto).
    pub fn jobs(mut self, n: usize) -> Self {
        self.cfg.jobs = n;
        self
    }

    /// The deployment SLA.
    pub fn sla(mut self, sla: Sla) -> Self {
        self.cfg.sla = sla;
        self
    }

    /// Simulation fidelity for telemetry collection and closed loops.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Parses a backend name (`cycle_accurate` | `surrogate`); an unknown
    /// name surfaces as [`ConfigError::UnknownBackend`] at
    /// [`build`](ExperimentConfigBuilder::build) time rather than
    /// panicking at the call site.
    pub fn backend_name(mut self, name: &str) -> Self {
        match name.parse::<BackendChoice>() {
            Ok(b) => self.cfg.backend = b,
            Err(e) => self.backend_error = Some(ConfigError::UnknownBackend(e.0)),
        }
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// [`ConfigError::ZeroInterval`] when `interval_insts == 0`,
    /// [`ConfigError::TooFewFolds`] when `folds < 2`,
    /// [`ConfigError::EmptyCorpusDimension`] when any corpus dimension
    /// would produce zero telemetry, and [`ConfigError::UnknownBackend`]
    /// when [`backend_name`](ExperimentConfigBuilder::backend_name) was
    /// given an unparseable fidelity.
    pub fn build(self) -> Result<ExperimentConfig, ConfigError> {
        if let Some(e) = self.backend_error {
            return Err(e);
        }
        let c = &self.cfg;
        if c.interval_insts == 0 {
            return Err(ConfigError::ZeroInterval);
        }
        if c.folds < 2 {
            return Err(ConfigError::TooFewFolds(c.folds));
        }
        for (knob, value) in [
            ("hdtr_apps", c.hdtr_apps),
            ("hdtr_traces_per_app", c.hdtr_traces_per_app),
            ("hdtr_intervals_per_trace", c.hdtr_intervals_per_trace),
            ("spec_intervals_per_simpoint", c.spec_intervals_per_simpoint),
            (
                "spec_max_simpoints_per_workload",
                c.spec_max_simpoints_per_workload,
            ),
        ] {
            if value == 0 {
                return Err(ConfigError::EmptyCorpusDimension(knob));
            }
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for cfg in [ExperimentConfig::quick(), ExperimentConfig::full()] {
            assert!(cfg.interval_insts > 0);
            assert!(cfg.hdtr_apps > 0);
            assert!(cfg.hdtr_trace_insts() >= 4 * cfg.interval_insts);
            assert!(cfg.sla.violation_window(cfg.interval_insts) >= 2);
        }
    }

    #[test]
    fn sub_seeds_differ_by_tag_and_seed() {
        let a = ExperimentConfig::quick();
        let mut b = ExperimentConfig::quick();
        b.seed = 8;
        assert_ne!(a.sub_seed("x"), a.sub_seed("y"));
        assert_ne!(a.sub_seed("x"), b.sub_seed("x"));
        assert_eq!(a.sub_seed("x"), a.sub_seed("x"));
    }

    #[test]
    fn builder_accepts_valid_overrides() {
        let cfg = ExperimentConfig::builder()
            .seed(42)
            .interval_insts(4_000)
            .folds(4)
            .jobs(2)
            .build()
            .unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.interval_insts, 4_000);
        assert_eq!(cfg.folds, 4);
        // Untouched knobs keep the quick() base.
        assert_eq!(cfg.hdtr_apps, ExperimentConfig::quick().hdtr_apps);
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert_eq!(
            ExperimentConfig::builder().interval_insts(0).build(),
            Err(ConfigError::ZeroInterval)
        );
        assert_eq!(
            ExperimentConfig::builder().folds(1).build(),
            Err(ConfigError::TooFewFolds(1))
        );
        assert_eq!(
            ExperimentConfig::builder().hdtr_apps(0).build(),
            Err(ConfigError::EmptyCorpusDimension("hdtr_apps"))
        );
        assert_eq!(
            ExperimentConfig::builder()
                .spec_intervals_per_simpoint(0)
                .build(),
            Err(ConfigError::EmptyCorpusDimension(
                "spec_intervals_per_simpoint"
            ))
        );
        // Errors render a human-readable message.
        let msg = ConfigError::TooFewFolds(1).to_string();
        assert!(msg.contains("folds"), "{msg}");
    }

    #[test]
    fn builder_selects_backends_with_typed_errors() {
        let cfg = ExperimentConfig::builder()
            .backend(BackendChoice::Surrogate)
            .build()
            .unwrap();
        assert_eq!(cfg.backend, BackendChoice::Surrogate);
        let cfg = ExperimentConfig::builder()
            .backend_name("cycle_accurate")
            .build()
            .unwrap();
        assert_eq!(cfg.backend, BackendChoice::CycleAccurate);
        assert_eq!(
            ExperimentConfig::builder().backend_name("warp9").build(),
            Err(ConfigError::UnknownBackend("warp9".to_string()))
        );
        let msg = ConfigError::UnknownBackend("warp9".into()).to_string();
        assert!(msg.contains("warp9"), "{msg}");
        let msg = ConfigError::NonReferenceBackend(BackendChoice::Surrogate).to_string();
        assert!(msg.contains("surrogate"), "{msg}");
        // Presets default to the reference fidelity.
        assert_eq!(
            ExperimentConfig::quick().backend,
            BackendChoice::CycleAccurate
        );
        assert_eq!(
            ExperimentConfig::full().backend,
            BackendChoice::CycleAccurate
        );
    }

    #[test]
    fn struct_literal_construction_keeps_working() {
        let cfg = ExperimentConfig {
            seed: 99,
            ..ExperimentConfig::quick()
        };
        assert_eq!(cfg.seed, 99);
        let rebuilt = ExperimentConfigBuilder::from_base(cfg.clone())
            .build()
            .unwrap();
        assert_eq!(rebuilt, cfg);
    }

    #[test]
    fn full_is_larger_than_quick() {
        let q = ExperimentConfig::quick();
        let f = ExperimentConfig::full();
        assert!(f.hdtr_apps > q.hdtr_apps);
        assert!(f.spec_window_insts() > q.spec_window_insts());
    }
}
