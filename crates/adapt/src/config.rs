//! Experiment-grid configuration.
//!
//! The paper's datasets total tens of billions of simulated instructions;
//! this reproduction scales trace lengths and the SLA window down so the
//! full grid runs on a laptop while preserving every structural ratio
//! (the t→t+2 horizon, ops budgets per interval, window formula, corpus
//! category proportions). `EXPERIMENTS.md` records the scaling.

use crate::sla::Sla;

/// All scale knobs for dataset generation and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Master seed; every derived seed is a deterministic function of it.
    pub seed: u64,
    /// Telemetry interval in instructions (the paper's base is 10k).
    pub interval_insts: u64,
    /// Number of HDTR applications to synthesize (paper: 593).
    pub hdtr_apps: usize,
    /// Maximum traces used per HDTR application.
    pub hdtr_traces_per_app: usize,
    /// Measured intervals per HDTR trace.
    pub hdtr_intervals_per_trace: usize,
    /// Mean phase dwell of HDTR applications, instructions.
    pub hdtr_phase_len: u64,
    /// Warmup instructions before measuring each HDTR trace.
    pub hdtr_warmup_insts: u64,
    /// Measured intervals per SPEC SimPoint (paper: 200M instructions).
    pub spec_intervals_per_simpoint: usize,
    /// Mean phase dwell of SPEC benchmarks, instructions.
    pub spec_phase_len: u64,
    /// Warmup instructions before each SimPoint window.
    pub spec_warmup_insts: u64,
    /// Maximum SimPoints per SPEC workload (caps the 571 total).
    pub spec_max_simpoints_per_workload: usize,
    /// The deployment SLA.
    pub sla: Sla,
    /// Coarse SRCH granularity in intervals (stands in for the paper's
    /// 10M-instruction original interval).
    pub srch_coarse_intervals: usize,
    /// Cross-validation folds (paper: 32).
    pub folds: usize,
    /// Training guard band: labels used for *training* are computed at
    /// `P_SLA + guard` so deployed decisions carry slack against
    /// borderline intervals (evaluation always uses the contractual SLA).
    pub label_guard_band: f64,
    /// Worker threads for parallel sweeps (`psca-exec`). `0` = auto
    /// (`PSCA_JOBS` or `available_parallelism`). Results are bit-identical
    /// regardless of the value — cells carry their own seeds and merge in
    /// cell order.
    pub jobs: usize,
    /// Persistent sweep result cache directory, `None` to disable.
    /// Repeated `repro` invocations skip already-simulated corpus cells.
    pub sweep_cache: Option<std::path::PathBuf>,
}

impl ExperimentConfig {
    /// A minutes-scale configuration for the full reproduction run
    /// (`repro -- all`); release-mode recommended.
    pub fn full() -> ExperimentConfig {
        ExperimentConfig {
            seed: 0x15CA_2019,
            interval_insts: 10_000,
            hdtr_apps: 440,
            hdtr_traces_per_app: 3,
            hdtr_intervals_per_trace: 40,
            hdtr_phase_len: 100_000,
            hdtr_warmup_insts: 10_000,
            spec_intervals_per_simpoint: 160,
            spec_phase_len: 200_000,
            spec_warmup_insts: 10_000,
            spec_max_simpoints_per_workload: 2,
            sla: Sla::paper_default().with_t_sla_insts(640_000),
            srch_coarse_intervals: 16,
            folds: 32,
            label_guard_band: 0.02,
            jobs: 0,
            sweep_cache: Some(psca_exec::SweepCache::default_dir()),
        }
    }

    /// A seconds-scale configuration for tests and examples.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            seed: 7,
            interval_insts: 2_000,
            hdtr_apps: 24,
            hdtr_traces_per_app: 2,
            hdtr_intervals_per_trace: 16,
            hdtr_phase_len: 12_000,
            hdtr_warmup_insts: 2_000,
            spec_intervals_per_simpoint: 16,
            spec_phase_len: 16_000,
            spec_warmup_insts: 2_000,
            spec_max_simpoints_per_workload: 1,
            sla: Sla::paper_default().with_t_sla_insts(16_000),
            srch_coarse_intervals: 8,
            folds: 8,
            label_guard_band: 0.02,
            // Tests default to serial + uncached: bit-identity with
            // parallel runs is asserted by dedicated regression tests,
            // and unit tests must not touch a shared on-disk cache.
            jobs: 1,
            sweep_cache: None,
        }
    }

    /// Instructions per HDTR trace (excluding warmup).
    pub fn hdtr_trace_insts(&self) -> u64 {
        self.interval_insts * self.hdtr_intervals_per_trace as u64
    }

    /// Instructions per SPEC SimPoint window (excluding warmup).
    pub fn spec_window_insts(&self) -> u64 {
        self.interval_insts * self.spec_intervals_per_simpoint as u64
    }

    /// The SLA used to compute *training* labels: the contractual SLA
    /// tightened by the guard band.
    pub fn training_sla(&self) -> Sla {
        self.sla
            .with_p_sla((self.sla.p_sla + self.label_guard_band).min(1.0))
    }

    /// Deterministic sub-seed for a named component.
    pub fn sub_seed(&self, tag: &str) -> u64 {
        let mut h: u64 = self.seed ^ 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for cfg in [ExperimentConfig::quick(), ExperimentConfig::full()] {
            assert!(cfg.interval_insts > 0);
            assert!(cfg.hdtr_apps > 0);
            assert!(cfg.hdtr_trace_insts() >= 4 * cfg.interval_insts);
            assert!(cfg.sla.violation_window(cfg.interval_insts) >= 2);
        }
    }

    #[test]
    fn sub_seeds_differ_by_tag_and_seed() {
        let a = ExperimentConfig::quick();
        let mut b = ExperimentConfig::quick();
        b.seed = 8;
        assert_ne!(a.sub_seed("x"), a.sub_seed("y"));
        assert_ne!(a.sub_seed("x"), b.sub_seed("x"));
        assert_eq!(a.sub_seed("x"), a.sub_seed("x"));
    }

    #[test]
    fn full_is_larger_than_quick() {
        let q = ExperimentConfig::quick();
        let f = ExperimentConfig::full();
        assert!(f.hdtr_apps > q.hdtr_apps);
        assert!(f.spec_window_insts() > q.spec_window_insts());
    }
}
