//! Graceful degradation for the closed adaptation loop.
//!
//! The paper's deployment story (§5) assumes the µC firmware always
//! produces a timely, finite prediction. Real silicon does not: counters
//! glitch, firmware images rot, predictions miss the `t+2` apply deadline
//! (Figure 3). This module gives the controller a *degradation ladder* so
//! that any such failure degrades performance-per-watt instead of
//! correctness:
//!
//! 1. [`DegradeLevel::ModelDriven`] — healthy: apply firmware decisions.
//! 2. [`DegradeLevel::HoldLast`] — predictions missing or stale: keep the
//!    last known-good gating decision.
//! 3. [`DegradeLevel::HeuristicOnly`] — predictions present but
//!    untrustworthy (non-finite features or firmware faults): gate on the
//!    §3.1 guardrail heuristic alone.
//! 4. [`DegradeLevel::PinnedHighPerf`] — sustained failure: pin both
//!    clusters on. PPW gains are forfeited but the SLA cannot be violated
//!    by a broken predictor.
//!
//! The [`Watchdog`] walks the ladder: an unhealthy window escalates
//! immediately to the health class's target tier (a missing prediction
//! *cannot* be applied, so at minimum the loop holds), a persistent
//! unhealthy streak escalates one tier further, and
//! [`DegradeConfig::probation`] consecutive clean windows step back down
//! one tier at a time until model-driven gating is restored.

/// Rung of the degradation ladder, ordered from fully healthy to fully
/// pinned. Ordering is meaningful: higher is more degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradeLevel {
    /// Firmware predictions drive gating (the paper's design point).
    #[default]
    ModelDriven,
    /// Hold the last known-good gating decision.
    HoldLast,
    /// Gate on the guardrail heuristic only; ignore firmware output.
    HeuristicOnly,
    /// Both clusters pinned on: maximum performance, no adaptation.
    PinnedHighPerf,
}

impl DegradeLevel {
    /// All levels, in escalation order.
    pub const ALL: [DegradeLevel; 4] = [
        DegradeLevel::ModelDriven,
        DegradeLevel::HoldLast,
        DegradeLevel::HeuristicOnly,
        DegradeLevel::PinnedHighPerf,
    ];

    /// Ladder index: 0 (model-driven) ..= 3 (pinned).
    pub fn rank(self) -> usize {
        match self {
            DegradeLevel::ModelDriven => 0,
            DegradeLevel::HoldLast => 1,
            DegradeLevel::HeuristicOnly => 2,
            DegradeLevel::PinnedHighPerf => 3,
        }
    }

    /// Stable name used in metrics and reports.
    pub fn name(self) -> &'static str {
        match self {
            DegradeLevel::ModelDriven => "model_driven",
            DegradeLevel::HoldLast => "hold_last",
            DegradeLevel::HeuristicOnly => "heuristic_only",
            DegradeLevel::PinnedHighPerf => "pinned_high_perf",
        }
    }

    /// One rung less degraded (saturating at model-driven).
    pub fn step_down(self) -> DegradeLevel {
        match self {
            DegradeLevel::ModelDriven | DegradeLevel::HoldLast => DegradeLevel::ModelDriven,
            DegradeLevel::HeuristicOnly => DegradeLevel::HoldLast,
            DegradeLevel::PinnedHighPerf => DegradeLevel::HeuristicOnly,
        }
    }

    /// One rung more degraded (saturating at pinned).
    pub fn step_up(self) -> DegradeLevel {
        match self {
            DegradeLevel::ModelDriven => DegradeLevel::HoldLast,
            DegradeLevel::HoldLast => DegradeLevel::HeuristicOnly,
            DegradeLevel::HeuristicOnly | DegradeLevel::PinnedHighPerf => {
                DegradeLevel::PinnedHighPerf
            }
        }
    }
}

/// Health of the prediction scheduled to configure one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionHealth {
    /// A timely, finite prediction is available.
    Ok,
    /// No prediction arrived for this window (dropped by the µC).
    Missing,
    /// A prediction arrived, but after its `t+2` apply deadline.
    Stale,
    /// The prediction pipeline produced non-finite values (corrupted
    /// counters or corrupted weights).
    NonFinite,
    /// The firmware rejected its input (dimension mismatch or invalid
    /// parameters) — see [`psca_uc::FirmwareError`].
    FirmwareFault,
}

impl PredictionHealth {
    /// Whether this window's prediction can be applied as-is.
    pub fn is_healthy(self) -> bool {
        matches!(self, PredictionHealth::Ok)
    }

    /// The minimum ladder tier this health class forces: a missing or
    /// late prediction can still be bridged by holding, but a predictor
    /// emitting garbage must be taken out of the loop entirely.
    pub fn target_level(self) -> DegradeLevel {
        match self {
            PredictionHealth::Ok => DegradeLevel::ModelDriven,
            PredictionHealth::Missing | PredictionHealth::Stale => DegradeLevel::HoldLast,
            PredictionHealth::NonFinite | PredictionHealth::FirmwareFault => {
                DegradeLevel::HeuristicOnly
            }
        }
    }

    /// Stable name used in metrics.
    pub fn name(self) -> &'static str {
        match self {
            PredictionHealth::Ok => "ok",
            PredictionHealth::Missing => "missing",
            PredictionHealth::Stale => "stale",
            PredictionHealth::NonFinite => "non_finite",
            PredictionHealth::FirmwareFault => "firmware_fault",
        }
    }
}

/// Watchdog tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeConfig {
    /// Consecutive unhealthy windows *at* a tier before escalating one
    /// rung beyond the health class's target tier.
    pub escalate_after: usize,
    /// Consecutive clean windows before stepping down one rung.
    pub probation: usize,
}

impl Default for DegradeConfig {
    fn default() -> DegradeConfig {
        DegradeConfig {
            escalate_after: 2,
            probation: 6,
        }
    }
}

/// Per-run degradation accounting, reported by the hardened loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradeSummary {
    /// Windows spent at each ladder rank (indexed by [`DegradeLevel::rank`]).
    pub residency: [u64; 4],
    /// Total level changes (escalations + recoveries).
    pub transitions: u64,
    /// Transitions toward a more degraded tier.
    pub escalations: u64,
    /// Probation-earned transitions toward a healthier tier.
    pub recoveries: u64,
    /// Most degraded tier reached during the run.
    pub worst: DegradeLevel,
    /// Tier in force when the run ended.
    pub last: DegradeLevel,
}

impl DegradeSummary {
    /// Fraction of windows spent above model-driven.
    pub fn degraded_fraction(&self) -> f64 {
        let total: u64 = self.residency.iter().sum();
        if total == 0 {
            return 0.0;
        }
        (total - self.residency[0]) as f64 / total as f64
    }
}

/// Prediction-health watchdog: one [`observe`](Watchdog::observe) call
/// per prediction window drives the degradation ladder.
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: DegradeConfig,
    level: DegradeLevel,
    clean_streak: usize,
    unhealthy_streak: usize,
    summary: DegradeSummary,
}

impl Watchdog {
    /// Creates a watchdog starting at [`DegradeLevel::ModelDriven`].
    pub fn new(cfg: DegradeConfig) -> Watchdog {
        Watchdog {
            cfg,
            level: DegradeLevel::ModelDriven,
            clean_streak: 0,
            unhealthy_streak: 0,
            summary: DegradeSummary::default(),
        }
    }

    /// The tier currently in force.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// Accounting so far.
    pub fn summary(&self) -> DegradeSummary {
        DegradeSummary {
            last: self.level,
            ..self.summary
        }
    }

    /// Observes the health of one window's scheduled prediction and
    /// returns the tier that must govern that window.
    pub fn observe(&mut self, health: PredictionHealth) -> DegradeLevel {
        if health.is_healthy() {
            self.unhealthy_streak = 0;
            self.clean_streak += 1;
            if self.level != DegradeLevel::ModelDriven && self.clean_streak >= self.cfg.probation {
                let next = self.level.step_down();
                self.transition(next, health);
                self.clean_streak = 0;
            }
        } else {
            psca_obs::counter(match health {
                PredictionHealth::Missing => "adapt.degrade.health.missing",
                PredictionHealth::Stale => "adapt.degrade.health.stale",
                PredictionHealth::NonFinite => "adapt.degrade.health.non_finite",
                _ => "adapt.degrade.health.firmware_fault",
            })
            .inc();
            self.clean_streak = 0;
            let target = health.target_level();
            if self.level < target {
                // An unapplicable prediction forces its target tier now:
                // there is nothing valid to apply this window.
                self.transition(target, health);
                self.unhealthy_streak = 0;
            } else {
                self.unhealthy_streak += 1;
                if self.unhealthy_streak >= self.cfg.escalate_after {
                    let next = self.level.step_up();
                    if next != self.level {
                        self.transition(next, health);
                    }
                    self.unhealthy_streak = 0;
                }
            }
        }
        self.summary.residency[self.level.rank()] += 1;
        self.summary.worst = self.summary.worst.max(self.level);
        psca_obs::gauge("adapt.degrade.level").set(self.level.rank() as f64);
        psca_obs::series("adapt.degrade.level").push(self.level.rank() as f64);
        self.level
    }

    fn transition(&mut self, next: DegradeLevel, health: PredictionHealth) {
        let escalating = next > self.level;
        let prev = self.level;
        self.level = next;
        self.summary.transitions += 1;
        psca_obs::counter("adapt.degrade.transitions").inc();
        if escalating {
            self.summary.escalations += 1;
            psca_obs::counter("adapt.degrade.escalations").inc();
        } else {
            self.summary.recoveries += 1;
            psca_obs::counter("adapt.degrade.recoveries").inc();
        }
        psca_obs::emit(
            if escalating {
                psca_obs::Level::Warn
            } else {
                psca_obs::Level::Info
            },
            "adapt.degrade.transition",
            &[
                ("from", prev.name().into()),
                ("to", next.name().into()),
                ("health", health.name().into()),
            ],
        );
        if psca_obs::trace::enabled() {
            psca_obs::trace::instant(
                "adapt.degrade.transition",
                &[("from", prev.name().into()), ("to", next.name().into())],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watchdog() -> Watchdog {
        Watchdog::new(DegradeConfig::default())
    }

    #[test]
    fn healthy_stream_stays_model_driven() {
        let mut w = watchdog();
        for _ in 0..50 {
            assert_eq!(w.observe(PredictionHealth::Ok), DegradeLevel::ModelDriven);
        }
        let s = w.summary();
        assert_eq!(s.transitions, 0);
        assert_eq!(s.worst, DegradeLevel::ModelDriven);
        assert_eq!(s.residency[0], 50);
        assert_eq!(s.degraded_fraction(), 0.0);
    }

    #[test]
    fn missing_prediction_forces_hold_last_immediately() {
        let mut w = watchdog();
        w.observe(PredictionHealth::Ok);
        assert_eq!(w.observe(PredictionHealth::Missing), DegradeLevel::HoldLast);
    }

    #[test]
    fn non_finite_jumps_straight_to_heuristic() {
        let mut w = watchdog();
        assert_eq!(
            w.observe(PredictionHealth::NonFinite),
            DegradeLevel::HeuristicOnly
        );
    }

    #[test]
    fn sustained_failure_walks_the_whole_ladder() {
        let mut w = watchdog();
        let mut seen = Vec::new();
        for _ in 0..8 {
            seen.push(w.observe(PredictionHealth::Missing));
        }
        assert_eq!(seen[0], DegradeLevel::HoldLast);
        assert_eq!(*seen.last().unwrap(), DegradeLevel::PinnedHighPerf);
        assert_eq!(w.summary().worst, DegradeLevel::PinnedHighPerf);
        // Strictly monotone escalation: never steps down under sustained
        // failure.
        assert!(seen.windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn probation_steps_down_one_tier_at_a_time() {
        let cfg = DegradeConfig::default();
        let mut w = Watchdog::new(cfg);
        w.observe(PredictionHealth::NonFinite); // → HeuristicOnly
        let mut levels = Vec::new();
        for _ in 0..2 * cfg.probation {
            levels.push(w.observe(PredictionHealth::Ok));
        }
        // First probation period ends at HoldLast, second at ModelDriven.
        assert_eq!(levels[cfg.probation - 1], DegradeLevel::HoldLast);
        assert_eq!(levels[2 * cfg.probation - 1], DegradeLevel::ModelDriven);
        assert_eq!(w.summary().recoveries, 2);
    }

    #[test]
    fn intermittent_faults_reset_probation() {
        let cfg = DegradeConfig::default();
        let mut w = Watchdog::new(cfg);
        w.observe(PredictionHealth::Missing); // → HoldLast
        for _ in 0..3 {
            // Never enough clean windows in a row to recover.
            for _ in 0..cfg.probation - 1 {
                w.observe(PredictionHealth::Ok);
            }
            assert_eq!(w.observe(PredictionHealth::Missing), DegradeLevel::HoldLast);
        }
        assert_eq!(w.summary().recoveries, 0);
    }
}
