//! Trace summary statistics.
//!
//! Used by the workload synthesizer's self-checks (does a generated
//! archetype actually have the instruction mix it promises?) and by tests.

use crate::instruction::Instruction;
use crate::isa::OpClass;
use crate::source::TraceSource;

/// Aggregate statistics over a trace.
///
/// # Examples
///
/// ```
/// use psca_trace::{Instruction, OpClass, TraceStats, VecTrace};
///
/// let insts = vec![Instruction::alu(OpClass::IntAlu, None, [None, None]); 10];
/// let stats = TraceStats::from_source(&mut VecTrace::new(insts));
/// assert_eq!(stats.total, 10);
/// assert_eq!(stats.fraction(OpClass::IntAlu), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total dynamic instructions observed.
    pub total: u64,
    /// Count per operation class, indexed by [`OpClass::index`].
    pub per_class: [u64; OpClass::ALL.len()],
    /// Count of instructions with at least one register source.
    pub with_sources: u64,
    /// Count of taken branches.
    pub taken_branches: u64,
    /// Number of distinct 64-byte data cache lines touched (approximate,
    /// exact for traces touching fewer than ~1M lines).
    pub distinct_lines: u64,
    line_set: std::collections::HashSet<u64>,
}

impl TraceStats {
    /// Computes statistics by draining a source.
    pub fn from_source<S: TraceSource>(source: &mut S) -> TraceStats {
        let mut stats = TraceStats::default();
        while let Some(inst) = source.next_instruction() {
            stats.observe(&inst);
        }
        stats
    }

    /// Incorporates a single instruction.
    pub fn observe(&mut self, inst: &Instruction) {
        self.total += 1;
        self.per_class[inst.op.index()] += 1;
        if inst.src_count() > 0 {
            self.with_sources += 1;
        }
        if let Some(b) = inst.branch {
            if b.taken {
                self.taken_branches += 1;
            }
        }
        if let Some(m) = inst.mem {
            if self.line_set.len() < 1 << 20 && self.line_set.insert(m.addr >> 6) {
                self.distinct_lines += 1;
            }
        }
    }

    /// Fraction of instructions in the given class (0 if the trace is empty).
    pub fn fraction(&self, op: OpClass) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.per_class[op.index()] as f64 / self.total as f64
        }
    }

    /// Fraction of instructions that are loads or stores.
    pub fn mem_fraction(&self) -> f64 {
        self.fraction(OpClass::Load) + self.fraction(OpClass::Store)
    }

    /// Fraction of instructions that are branches of any kind.
    pub fn branch_fraction(&self) -> f64 {
        self.fraction(OpClass::Jump)
            + self.fraction(OpClass::CondBranch)
            + self.fraction(OpClass::IndirectBranch)
    }

    /// Fraction of instructions on the FP/SIMD stack.
    pub fn fp_fraction(&self) -> f64 {
        OpClass::ALL
            .iter()
            .filter(|o| o.is_fp())
            .map(|&o| self.fraction(o))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BranchInfo, MemRef, Reg};
    use crate::source::VecTrace;

    #[test]
    fn stats_count_mix() {
        let insts = vec![
            Instruction::alu(OpClass::IntAlu, Some(Reg::int(0)), [None, None]),
            Instruction::load(Reg::int(1), Some(Reg::int(0)), MemRef::new(0, 8)),
            Instruction::load(Reg::int(2), None, MemRef::new(64, 8)),
            Instruction::store(Some(Reg::int(1)), None, MemRef::new(0, 8)),
            Instruction::cond_branch([Some(Reg::int(2)), None], BranchInfo::new(true, 8)),
        ];
        let stats = TraceStats::from_source(&mut VecTrace::new(insts));
        assert_eq!(stats.total, 5);
        assert_eq!(stats.per_class[OpClass::Load.index()], 2);
        assert!((stats.mem_fraction() - 0.6).abs() < 1e-12);
        assert!((stats.branch_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(stats.taken_branches, 1);
        assert_eq!(stats.distinct_lines, 2); // lines 0 and 1
        assert_eq!(stats.with_sources, 3);
    }

    #[test]
    fn empty_trace_has_zero_fractions() {
        let stats = TraceStats::from_source(&mut VecTrace::default());
        assert_eq!(stats.total, 0);
        assert_eq!(stats.fraction(OpClass::Load), 0.0);
        assert_eq!(stats.fp_fraction(), 0.0);
    }
}
