//! Binary trace files: record instruction streams for later playback.
//!
//! The paper's datasets are built by recording "portions of [a workload's]
//! instruction stream in *traces* for later playback in a cycle-accurate
//! simulator" (§4.1), and its optimization-as-a-service model ships
//! customer traces to the vendor for replay (§3.2). This module is that
//! artifact: a compact little-endian encoding of an instruction stream
//! with lossless round-tripping, usable with any `io::Write`/`io::Read`.
//!
//! Layout: magic `PSTR`, version, instruction count, then one
//! variable-length record per instruction (opcode byte, register bytes
//! with `0xFF` as none, optional memory/branch payloads selected by the
//! opcode class, and a PC delta varint — PCs are mostly sequential, so
//! deltas keep traces small).

use crate::instruction::Instruction;
use crate::isa::{BranchInfo, MemRef, OpClass, Reg, NUM_ARCH_REGS};
use crate::source::TraceSource;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PSTR";
const VERSION: u8 = 1;
const NO_REG: u8 = 0xFF;

/// Errors raised while reading a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a trace file.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Malformed record.
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceFileError::BadMagic => f.write_str("not a PSCA trace file"),
            TraceFileError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceFileError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> TraceFileError {
        TraceFileError::Io(e)
    }
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64, TraceFileError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        v |= ((b[0] & 0x7F) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(TraceFileError::Corrupt("varint overflow"));
        }
    }
}

/// ZigZag encoding for signed PC deltas.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn reg_byte(r: Option<Reg>) -> u8 {
    r.map_or(NO_REG, |r| r.index() as u8)
}

fn byte_reg(b: u8) -> Result<Option<Reg>, TraceFileError> {
    if b == NO_REG {
        Ok(None)
    } else if (b as usize) < NUM_ARCH_REGS {
        Ok(Some(Reg::from_index(b as usize)))
    } else {
        Err(TraceFileError::Corrupt("register index out of range"))
    }
}

/// Writes `count` instructions from `source` to `out`; returns how many
/// were written (fewer if the source ended).
///
/// # Errors
/// Propagates I/O errors from `out`.
pub fn write_trace<S: TraceSource, W: Write>(
    source: &mut S,
    count: u64,
    out: &mut W,
) -> Result<u64, TraceFileError> {
    // Buffer records so the header can carry the exact count even when the
    // source ends early.
    let mut body: Vec<u8> = Vec::new();
    let mut last_pc = 0u64;
    let mut written = 0u64;
    for _ in 0..count {
        let Some(inst) = source.next_instruction() else {
            break;
        };
        body.push(inst.op.index() as u8);
        body.push(reg_byte(inst.dst));
        body.push(reg_byte(inst.srcs[0]));
        body.push(reg_byte(inst.srcs[1]));
        write_varint(&mut body, zigzag(inst.pc as i64 - last_pc as i64))?;
        last_pc = inst.pc;
        if let Some(m) = inst.mem {
            write_varint(&mut body, m.addr)?;
            body.push(m.size);
        }
        if let Some(b) = inst.branch {
            body.push(b.taken as u8);
            write_varint(&mut body, b.target)?;
        }
        written += 1;
    }
    out.write_all(MAGIC)?;
    out.write_all(&[VERSION])?;
    out.write_all(&written.to_le_bytes())?;
    out.write_all(&body)?;
    Ok(written)
}

/// A [`TraceSource`] replaying a trace file from any reader.
#[derive(Debug)]
pub struct TraceFileReader<R> {
    reader: R,
    remaining: u64,
    last_pc: u64,
    /// Set if a record failed to decode mid-stream (the source then ends).
    error: Option<TraceFileError>,
}

impl<R: Read> TraceFileReader<R> {
    /// Opens a trace stream, validating the header.
    ///
    /// # Errors
    /// Returns an error for bad magic, version, or I/O failures.
    pub fn open(mut reader: R) -> Result<TraceFileReader<R>, TraceFileError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let mut version = [0u8; 1];
        reader.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(TraceFileError::BadVersion(version[0]));
        }
        let mut count = [0u8; 8];
        reader.read_exact(&mut count)?;
        Ok(TraceFileReader {
            reader,
            remaining: u64::from_le_bytes(count),
            last_pc: 0,
            error: None,
        })
    }

    /// Instructions left to replay.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The decode error that ended the stream early, if any.
    pub fn error(&self) -> Option<&TraceFileError> {
        self.error.as_ref()
    }

    fn read_record(&mut self) -> Result<Instruction, TraceFileError> {
        let mut head = [0u8; 4];
        self.reader.read_exact(&mut head)?;
        let op = *OpClass::ALL
            .get(head[0] as usize)
            .ok_or(TraceFileError::Corrupt("bad opcode"))?;
        let dst = byte_reg(head[1])?;
        let srcs = [byte_reg(head[2])?, byte_reg(head[3])?];
        let delta = unzigzag(read_varint(&mut self.reader)?);
        let pc = (self.last_pc as i64 + delta) as u64;
        self.last_pc = pc;
        let mem = if op.is_mem() {
            let addr = read_varint(&mut self.reader)?;
            let mut size = [0u8; 1];
            self.reader.read_exact(&mut size)?;
            Some(MemRef::new(addr, size[0]))
        } else {
            None
        };
        let branch = if op.is_branch() {
            let mut taken = [0u8; 1];
            self.reader.read_exact(&mut taken)?;
            if taken[0] > 1 {
                return Err(TraceFileError::Corrupt("bad branch flag"));
            }
            let target = read_varint(&mut self.reader)?;
            Some(BranchInfo::new(taken[0] == 1, target))
        } else {
            None
        };
        Ok(Instruction {
            op,
            dst,
            srcs,
            mem,
            branch,
            pc,
        })
    }
}

impl<R: Read> TraceSource for TraceFileReader<R> {
    fn next_instruction(&mut self) -> Option<Instruction> {
        if self.remaining == 0 || self.error.is_some() {
            return None;
        }
        match self.read_record() {
            Ok(inst) => {
                self.remaining -= 1;
                Some(inst)
            }
            Err(e) => {
                self.error = Some(e);
                self.remaining = 0;
                None
            }
        }
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecTrace;

    fn sample_insts() -> Vec<Instruction> {
        vec![
            Instruction::alu(
                OpClass::IntAlu,
                Some(Reg::int(1)),
                [Some(Reg::int(2)), None],
            )
            .at_pc(0x1000),
            Instruction::load(Reg::fp(3), Some(Reg::int(24)), MemRef::new(0xdead_beef, 8))
                .at_pc(0x1004),
            Instruction::store(Some(Reg::fp(3)), None, MemRef::new(0x10, 64)).at_pc(0x1008),
            Instruction::cond_branch([None, None], BranchInfo::new(true, 0x900)).at_pc(0x100c),
            Instruction::indirect_branch(Some(Reg::int(5)), BranchInfo::new(false, 0x2000))
                .at_pc(0x0800), // backwards PC delta
        ]
    }

    #[test]
    fn roundtrip_is_lossless() {
        let insts = sample_insts();
        let mut buf = Vec::new();
        let n = write_trace(&mut VecTrace::new(insts.clone()), 100, &mut buf).unwrap();
        assert_eq!(n, 5);
        let mut reader = TraceFileReader::open(buf.as_slice()).unwrap();
        assert_eq!(reader.remaining(), 5);
        for expect in &insts {
            assert_eq!(reader.next_instruction().as_ref(), Some(expect));
        }
        assert!(reader.next_instruction().is_none());
        assert!(reader.error().is_none());
    }

    #[test]
    fn count_caps_recording() {
        let insts = sample_insts();
        let mut buf = Vec::new();
        let n = write_trace(&mut VecTrace::new(insts), 2, &mut buf).unwrap();
        assert_eq!(n, 2);
        let reader = TraceFileReader::open(buf.as_slice()).unwrap();
        assert_eq!(reader.remaining(), 2);
    }

    #[test]
    fn header_validation() {
        assert!(matches!(
            TraceFileReader::open(&b"XXXX\x01"[..]).unwrap_err(),
            TraceFileError::BadMagic
        ));
        let mut buf = Vec::new();
        write_trace(&mut VecTrace::new(sample_insts()), 5, &mut buf).unwrap();
        buf[4] = 9;
        assert!(matches!(
            TraceFileReader::open(buf.as_slice()).unwrap_err(),
            TraceFileError::BadVersion(9)
        ));
    }

    #[test]
    fn truncated_body_ends_stream_with_error() {
        let mut buf = Vec::new();
        write_trace(&mut VecTrace::new(sample_insts()), 5, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = TraceFileReader::open(buf.as_slice()).unwrap();
        let mut n = 0;
        while reader.next_instruction().is_some() {
            n += 1;
        }
        assert!(n < 5);
        assert!(reader.error().is_some());
    }

    #[test]
    fn varint_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN / 2, i64::MAX / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn generated_workload_roundtrips_through_disk_format() {
        // A realistic end-to-end check through an in-memory "file".
        use crate::stats::TraceStats;
        let insts: Vec<Instruction> = sample_insts()
            .into_iter()
            .cycle()
            .take(1000)
            .enumerate()
            .map(|(i, inst)| inst.at_pc(0x1000 + (i as u64 % 97) * 4))
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut VecTrace::new(insts.clone()), 1_000, &mut buf).unwrap();
        let mut reader = TraceFileReader::open(buf.as_slice()).unwrap();
        let replayed = TraceStats::from_source(&mut reader);
        let original = TraceStats::from_source(&mut VecTrace::new(insts));
        assert_eq!(replayed, original);
    }
}
