//! # psca-trace
//!
//! Instruction-trace substrate for the PSCA (Post-Silicon CPU Adaptation)
//! reproduction.
//!
//! The paper's datasets are built by recording portions of application
//! instruction streams in *traces* and replaying them in a cycle-accurate
//! simulator (§4.1). This crate provides:
//!
//! - a compact ISA model ([`OpClass`], [`Reg`], [`MemRef`], [`BranchInfo`])
//!   rich enough for a clustered out-of-order timing model;
//! - the [`Instruction`] record that traces are made of;
//! - streaming trace abstractions ([`TraceSource`], [`VecTrace`]) so that
//!   multi-million-instruction traces never need to be materialized;
//! - [`SimPointSpec`] windows mirroring the paper's SimPoint methodology;
//! - [`TraceStats`] summary statistics used by tests and the workload
//!   synthesizer's self-checks.
//!
//! # Examples
//!
//! ```
//! use psca_trace::{Instruction, OpClass, Reg, TraceSource, VecTrace};
//!
//! let insts = vec![
//!     Instruction::alu(OpClass::IntAlu, Some(Reg::int(1)), [None, None]),
//!     Instruction::alu(OpClass::IntMul, Some(Reg::int(2)), [Some(Reg::int(1)), None]),
//! ];
//! let mut trace = VecTrace::new(insts);
//! let mut n = 0;
//! while let Some(inst) = trace.next_instruction() {
//!     n += 1;
//!     let _ = inst.op;
//! }
//! assert_eq!(n, 2);
//! ```

#![warn(missing_docs)]

pub mod file;

mod instruction;
mod isa;
mod simpoint;
mod source;
mod stats;

pub use file::{write_trace, TraceFileError, TraceFileReader};
pub use instruction::Instruction;
pub use isa::{BranchInfo, MemRef, OpClass, Reg, NUM_ARCH_REGS};
pub use simpoint::SimPointSpec;
pub use source::{Chain, Take, TraceSource, VecTrace};
pub use stats::TraceStats;
