//! Streaming trace abstractions.
//!
//! Traces in the paper are multi-million-instruction recordings; the
//! experiment grid replays thousands of them. [`TraceSource`] is a pull
//! interface so that synthetic traces can be generated on the fly without
//! ever being materialized in memory.

use crate::instruction::Instruction;

/// A pull-based source of dynamic instructions.
///
/// Implementors generate or replay one instruction per call. A source is
/// exhausted when [`TraceSource::next_instruction`] returns `None`; it must
/// keep returning `None` afterwards (fused semantics).
///
/// The trait is object-safe so heterogeneous workload corpora can be stored
/// as `Box<dyn TraceSource>`.
pub trait TraceSource {
    /// Produces the next dynamic instruction, or `None` when the trace ends.
    fn next_instruction(&mut self) -> Option<Instruction>;

    /// A hint of how many instructions remain, if known.
    fn remaining_hint(&self) -> Option<u64> {
        None
    }

    /// Advances past up to `n` instructions without yielding them,
    /// returning how many were actually skipped (short at end of trace).
    ///
    /// The default pulls and discards one instruction at a time;
    /// random-access sources ([`VecTrace`]) override it with an O(1)
    /// cursor bump. Surrogate backends rely on this to pay only for the
    /// instructions they sample.
    fn skip(&mut self, n: u64) -> u64 {
        let mut skipped = 0;
        while skipped < n {
            if self.next_instruction().is_none() {
                break;
            }
            skipped += 1;
        }
        skipped
    }

    /// Caps this source at `n` instructions.
    fn take_insts(self, n: u64) -> Take<Self>
    where
        Self: Sized,
    {
        Take {
            inner: self,
            left: n,
        }
    }

    /// Chains another source after this one.
    fn chain_trace<S: TraceSource>(self, other: S) -> Chain<Self, S>
    where
        Self: Sized,
    {
        Chain {
            first: self,
            second: other,
            on_second: false,
        }
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_instruction(&mut self) -> Option<Instruction> {
        (**self).next_instruction()
    }

    fn remaining_hint(&self) -> Option<u64> {
        (**self).remaining_hint()
    }

    fn skip(&mut self, n: u64) -> u64 {
        (**self).skip(n)
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn next_instruction(&mut self) -> Option<Instruction> {
        (**self).next_instruction()
    }

    fn remaining_hint(&self) -> Option<u64> {
        (**self).remaining_hint()
    }

    fn skip(&mut self, n: u64) -> u64 {
        (**self).skip(n)
    }
}

/// An in-memory trace backed by a `Vec<Instruction>`.
///
/// Useful for tests and for recording short windows (e.g. SimPoints) for
/// repeated replay during paired-mode dataset generation.
#[derive(Debug, Clone, Default)]
pub struct VecTrace {
    insts: Vec<Instruction>,
    pos: usize,
}

impl VecTrace {
    /// Creates a trace over the given instructions.
    pub fn new(insts: Vec<Instruction>) -> VecTrace {
        VecTrace { insts, pos: 0 }
    }

    /// Records up to `n` instructions from `source` into a replayable trace.
    pub fn record<S: TraceSource>(source: &mut S, n: u64) -> VecTrace {
        let mut insts = Vec::with_capacity(n.min(1 << 22) as usize);
        for _ in 0..n {
            match source.next_instruction() {
                Some(i) => insts.push(i),
                None => break,
            }
        }
        psca_obs::counter("trace.instructions_recorded").add(insts.len() as u64);
        VecTrace::new(insts)
    }

    /// Number of instructions in the trace (independent of replay position).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resets the replay cursor to the beginning.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Read-only view of the recorded instructions.
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }
}

impl TraceSource for VecTrace {
    fn next_instruction(&mut self) -> Option<Instruction> {
        let inst = self.insts.get(self.pos).copied();
        if inst.is_some() {
            self.pos += 1;
        }
        inst
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some((self.insts.len() - self.pos) as u64)
    }

    fn skip(&mut self, n: u64) -> u64 {
        let left = (self.insts.len() - self.pos) as u64;
        let skipped = n.min(left);
        self.pos += skipped as usize;
        skipped
    }
}

/// Adapter returned by [`TraceSource::take_insts`].
#[derive(Debug, Clone)]
pub struct Take<S> {
    inner: S,
    left: u64,
}

impl<S: TraceSource> TraceSource for Take<S> {
    fn next_instruction(&mut self) -> Option<Instruction> {
        if self.left == 0 {
            return None;
        }
        let inst = self.inner.next_instruction();
        if inst.is_some() {
            self.left -= 1;
        } else {
            self.left = 0;
        }
        inst
    }

    fn remaining_hint(&self) -> Option<u64> {
        match self.inner.remaining_hint() {
            Some(r) => Some(r.min(self.left)),
            None => Some(self.left),
        }
    }

    fn skip(&mut self, n: u64) -> u64 {
        let skipped = self.inner.skip(n.min(self.left));
        self.left -= skipped;
        skipped
    }
}

/// Adapter returned by [`TraceSource::chain_trace`].
#[derive(Debug, Clone)]
pub struct Chain<A, B> {
    first: A,
    second: B,
    on_second: bool,
}

impl<A: TraceSource, B: TraceSource> TraceSource for Chain<A, B> {
    fn next_instruction(&mut self) -> Option<Instruction> {
        if !self.on_second {
            if let Some(i) = self.first.next_instruction() {
                return Some(i);
            }
            self.on_second = true;
        }
        self.second.next_instruction()
    }

    fn remaining_hint(&self) -> Option<u64> {
        let a = if self.on_second {
            Some(0)
        } else {
            self.first.remaining_hint()
        };
        match (a, self.second.remaining_hint()) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::OpClass;

    fn nops(n: usize) -> Vec<Instruction> {
        (0..n)
            .map(|i| Instruction::alu(OpClass::IntAlu, None, [None, None]).at_pc(i as u64 * 4))
            .collect()
    }

    #[test]
    fn vec_trace_replays_in_order_and_fuses() {
        let mut t = VecTrace::new(nops(3));
        assert_eq!(t.remaining_hint(), Some(3));
        assert_eq!(t.next_instruction().unwrap().pc, 0);
        assert_eq!(t.next_instruction().unwrap().pc, 4);
        assert_eq!(t.next_instruction().unwrap().pc, 8);
        assert!(t.next_instruction().is_none());
        assert!(t.next_instruction().is_none());
        t.rewind();
        assert_eq!(t.next_instruction().unwrap().pc, 0);
    }

    #[test]
    fn take_caps_length() {
        let mut t = VecTrace::new(nops(10)).take_insts(4);
        let mut n = 0;
        while t.next_instruction().is_some() {
            n += 1;
        }
        assert_eq!(n, 4);
        assert_eq!(t.remaining_hint(), Some(0));
    }

    #[test]
    fn take_on_short_source_stops_early() {
        let mut t = VecTrace::new(nops(2)).take_insts(100);
        assert!(t.next_instruction().is_some());
        assert!(t.next_instruction().is_some());
        assert!(t.next_instruction().is_none());
    }

    #[test]
    fn chain_concatenates() {
        let a = VecTrace::new(nops(2));
        let b = VecTrace::new(nops(3));
        let mut c = a.chain_trace(b);
        assert_eq!(c.remaining_hint(), Some(5));
        let mut n = 0;
        while c.next_instruction().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn record_captures_prefix() {
        let mut src = VecTrace::new(nops(10));
        let rec = VecTrace::record(&mut src, 6);
        assert_eq!(rec.len(), 6);
        assert_eq!(src.remaining_hint(), Some(4));
    }

    #[test]
    fn skip_advances_without_yielding() {
        let mut t = VecTrace::new(nops(10));
        assert_eq!(t.skip(3), 3);
        assert_eq!(t.next_instruction().unwrap().pc, 12);
        assert_eq!(t.skip(100), 6, "short skip at end of trace");
        assert!(t.next_instruction().is_none());

        // Take decrements its budget through skip.
        let mut capped = VecTrace::new(nops(10)).take_insts(4);
        assert_eq!(capped.skip(3), 3);
        assert!(capped.next_instruction().is_some());
        assert!(capped.next_instruction().is_none());

        // The O(1) override is reachable through a trait object.
        let mut b: Box<dyn TraceSource> = Box::new(VecTrace::new(nops(5)));
        assert_eq!(b.skip(4), 4);
        assert_eq!(b.remaining_hint(), Some(1));
    }

    #[test]
    fn boxed_dyn_source_works() {
        let mut b: Box<dyn TraceSource> = Box::new(VecTrace::new(nops(2)));
        assert!(b.next_instruction().is_some());
        assert_eq!(b.remaining_hint(), Some(1));
    }
}
