//! SimPoint-style trace windows.
//!
//! The paper's test set traces 200M-instruction SimPoints after warming
//! caches for 500M instructions (§4.1). [`SimPointSpec`] captures that
//! recipe: skip a warmup prefix (executed with telemetry discarded), then
//! record a measurement window.

use crate::source::{TraceSource, VecTrace};

/// A (warmup, window) recipe for extracting one SimPoint from a workload.
///
/// # Examples
///
/// ```
/// use psca_trace::SimPointSpec;
///
/// let sp = SimPointSpec::new(5_000, 20_000);
/// assert_eq!(sp.warmup_insts, 5_000);
/// assert_eq!(sp.window_insts, 20_000);
/// assert_eq!(sp.total_insts(), 25_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimPointSpec {
    /// Instructions executed before measurement begins (cache/µarch warmup).
    pub warmup_insts: u64,
    /// Instructions in the measured window.
    pub window_insts: u64,
}

impl SimPointSpec {
    /// Creates a SimPoint recipe.
    ///
    /// # Panics
    /// Panics if `window_insts == 0`.
    pub fn new(warmup_insts: u64, window_insts: u64) -> SimPointSpec {
        assert!(window_insts > 0, "SimPoint window must be non-empty");
        SimPointSpec {
            warmup_insts,
            window_insts,
        }
    }

    /// Total instructions consumed from the source (warmup + window).
    pub fn total_insts(&self) -> u64 {
        self.warmup_insts + self.window_insts
    }

    /// Splits a source into `(warmup, window)` recorded traces.
    ///
    /// The warmup trace is replayed with telemetry discarded to warm caches
    /// and predictors; the window trace is the measured SimPoint. Either may
    /// be shorter than requested if the source ends early.
    pub fn extract<S: TraceSource>(&self, source: &mut S) -> (VecTrace, VecTrace) {
        let warmup = VecTrace::record(source, self.warmup_insts);
        let window = VecTrace::record(source, self.window_insts);
        (warmup, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction;
    use crate::isa::OpClass;

    #[test]
    fn extract_splits_warmup_and_window() {
        let insts: Vec<_> = (0..100)
            .map(|i| Instruction::alu(OpClass::IntAlu, None, [None, None]).at_pc(i))
            .collect();
        let mut src = VecTrace::new(insts);
        let sp = SimPointSpec::new(30, 50);
        let (w, m) = sp.extract(&mut src);
        assert_eq!(w.len(), 30);
        assert_eq!(m.len(), 50);
        assert_eq!(w.instructions()[0].pc, 0);
        assert_eq!(m.instructions()[0].pc, 30);
    }

    #[test]
    fn extract_handles_short_sources() {
        let insts: Vec<_> = (0..10).map(|_| Instruction::default()).collect();
        let mut src = VecTrace::new(insts);
        let sp = SimPointSpec::new(8, 50);
        let (w, m) = sp.extract(&mut src);
        assert_eq!(w.len(), 8);
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_rejected() {
        let _ = SimPointSpec::new(10, 0);
    }
}
