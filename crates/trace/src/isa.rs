//! ISA-level types: operation classes, architectural registers, memory
//! references, and branch outcome records.

use std::fmt;

/// Number of architectural registers modeled (32 integer + 32 floating point).
///
/// The paper's mode-switch microcode transfers "up-to 32" register
/// dependencies (§3); our register file is sized to make that worst case
/// reachable per bank.
pub const NUM_ARCH_REGS: usize = 64;

/// Coarse operation class of a dynamic instruction.
///
/// Each class carries a default execution latency used by the dataflow
/// scheduler in `psca-cpu`. The classes are granular enough to produce
/// distinct event-counter signatures for the workload archetypes of
/// `psca-workloads` while keeping traces compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency, unpipelined in real cores).
    IntDiv,
    /// Floating-point add/subtract.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Fused multiply-add.
    FpFma,
    /// Floating-point divide / square root.
    FpDiv,
    /// Packed SIMD integer operation.
    SimdInt,
    /// Packed SIMD floating-point operation.
    SimdFp,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Unconditional direct branch / call / return.
    Jump,
    /// Conditional branch.
    CondBranch,
    /// Indirect branch (target predicted by BTB).
    IndirectBranch,
    /// No-op / fence / other single-slot op.
    Other,
}

impl OpClass {
    /// All operation classes, in a fixed order usable for histogramming.
    pub const ALL: [OpClass; 15] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpFma,
        OpClass::FpDiv,
        OpClass::SimdInt,
        OpClass::SimdFp,
        OpClass::Load,
        OpClass::Store,
        OpClass::Jump,
        OpClass::CondBranch,
        OpClass::IndirectBranch,
        OpClass::Other,
    ];

    /// Base execution latency in cycles, excluding memory-hierarchy time.
    ///
    /// Latencies approximate a Skylake-class core (e.g. 4-cycle FP add/mul,
    /// long-latency divides).
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 24,
            OpClass::FpAdd => 4,
            OpClass::FpMul => 4,
            OpClass::FpFma => 4,
            OpClass::FpDiv => 14,
            OpClass::SimdInt => 1,
            OpClass::SimdFp => 4,
            OpClass::Load => 0, // memory time supplied by the cache model
            OpClass::Store => 1,
            OpClass::Jump => 1,
            OpClass::CondBranch => 1,
            OpClass::IndirectBranch => 1,
            OpClass::Other => 1,
        }
    }

    /// Whether the class reads or writes memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the class is any flavour of branch.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            OpClass::Jump | OpClass::CondBranch | OpClass::IndirectBranch
        )
    }

    /// Whether the class executes on the floating-point/SIMD stack.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpFma | OpClass::FpDiv | OpClass::SimdFp
        )
    }

    /// Stable index of the class inside [`OpClass::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An architectural register identifier.
///
/// Registers `0..32` are the integer bank; `32..64` the floating-point bank.
/// The newtype keeps register arithmetic out of the public API surface
/// while staying `Copy` and 1-byte wide so traces stay small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Creates an integer-bank register.
    ///
    /// # Panics
    /// Panics if `idx >= 32`.
    #[inline]
    pub fn int(idx: u8) -> Reg {
        assert!(idx < 32, "integer register index out of range: {idx}");
        Reg(idx)
    }

    /// Creates a floating-point-bank register.
    ///
    /// # Panics
    /// Panics if `idx >= 32`.
    #[inline]
    pub fn fp(idx: u8) -> Reg {
        assert!(idx < 32, "fp register index out of range: {idx}");
        Reg(32 + idx)
    }

    /// Creates a register from its flat index in `0..NUM_ARCH_REGS`.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_ARCH_REGS`.
    #[inline]
    pub fn from_index(idx: usize) -> Reg {
        assert!(idx < NUM_ARCH_REGS, "register index out of range: {idx}");
        Reg(idx as u8)
    }

    /// Flat index in `0..NUM_ARCH_REGS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this register is in the floating-point bank.
    #[inline]
    pub fn is_fp(self) -> bool {
        self.0 >= 32
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.0 - 32)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// A data-memory reference attached to a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Virtual byte address accessed.
    pub addr: u64,
    /// Access size in bytes (typically 4, 8, 16, 32, or 64).
    pub size: u8,
}

impl MemRef {
    /// Creates a memory reference.
    #[inline]
    pub fn new(addr: u64, size: u8) -> MemRef {
        MemRef { addr, size }
    }
}

/// Branch outcome information recorded in the trace.
///
/// Traces record the *resolved* outcome; the simulator's branch predictor
/// decides whether the front-end guessed it correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Resolved target program counter.
    pub target: u64,
}

impl BranchInfo {
    /// Creates a branch outcome record.
    #[inline]
    pub fn new(taken: bool, target: u64) -> BranchInfo {
        BranchInfo { taken, target }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opclass_all_indices_are_stable() {
        for (i, op) in OpClass::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn opclass_latencies_positive_except_load() {
        for op in OpClass::ALL {
            if op == OpClass::Load {
                assert_eq!(op.latency(), 0);
            } else {
                assert!(op.latency() >= 1, "{op} must have latency >= 1");
            }
        }
    }

    #[test]
    fn opclass_predicates_are_disjoint_where_expected() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Load.is_branch());
        assert!(OpClass::CondBranch.is_branch());
        assert!(OpClass::FpFma.is_fp());
        assert!(!OpClass::IntAlu.is_fp());
    }

    #[test]
    fn reg_banks_do_not_collide() {
        let r = Reg::int(5);
        let f = Reg::fp(5);
        assert_ne!(r, f);
        assert!(!r.is_fp());
        assert!(f.is_fp());
        assert_eq!(r.index(), 5);
        assert_eq!(f.index(), 37);
    }

    #[test]
    fn reg_display_uses_bank_prefix() {
        assert_eq!(Reg::int(3).to_string(), "r3");
        assert_eq!(Reg::fp(3).to_string(), "f3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_int_rejects_out_of_range() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_fp_rejects_out_of_range() {
        let _ = Reg::fp(32);
    }

    #[test]
    fn reg_from_index_roundtrips() {
        for i in 0..NUM_ARCH_REGS {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }
}
