//! The dynamic [`Instruction`] record that traces are made of.

use crate::isa::{BranchInfo, MemRef, OpClass, Reg};

/// One dynamic instruction in a trace.
///
/// The record is deliberately compact (`Copy`, fixed size) because the
/// experiment grid replays hundreds of millions of them. An instruction
/// carries everything the clustered timing model needs: operation class,
/// register dataflow (up to two sources, one destination), an optional data
/// memory reference, a program-counter value for the front-end models, and
/// the resolved branch outcome when applicable.
///
/// # Examples
///
/// ```
/// use psca_trace::{Instruction, MemRef, OpClass, Reg};
///
/// let load = Instruction::load(Reg::int(4), Some(Reg::int(2)), MemRef::new(0x1000, 8));
/// assert_eq!(load.op, OpClass::Load);
/// assert!(load.mem.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if the instruction produces a value.
    pub dst: Option<Reg>,
    /// Source registers (dataflow inputs).
    pub srcs: [Option<Reg>; 2],
    /// Data memory reference for loads and stores.
    pub mem: Option<MemRef>,
    /// Resolved branch outcome for branch classes.
    pub branch: Option<BranchInfo>,
    /// Program counter of the instruction.
    pub pc: u64,
}

impl Instruction {
    /// Creates a non-memory, non-branch instruction (ALU/FP/SIMD).
    #[inline]
    pub fn alu(op: OpClass, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> Instruction {
        debug_assert!(!op.is_mem() && !op.is_branch());
        Instruction {
            op,
            dst,
            srcs,
            mem: None,
            branch: None,
            pc: 0,
        }
    }

    /// Creates a load producing `dst` from address `mem`, optionally
    /// depending on an address register.
    #[inline]
    pub fn load(dst: Reg, addr_src: Option<Reg>, mem: MemRef) -> Instruction {
        Instruction {
            op: OpClass::Load,
            dst: Some(dst),
            srcs: [addr_src, None],
            mem: Some(mem),
            branch: None,
            pc: 0,
        }
    }

    /// Creates a store of `data_src` to address `mem`.
    #[inline]
    pub fn store(data_src: Option<Reg>, addr_src: Option<Reg>, mem: MemRef) -> Instruction {
        Instruction {
            op: OpClass::Store,
            dst: None,
            srcs: [data_src, addr_src],
            mem: Some(mem),
            branch: None,
            pc: 0,
        }
    }

    /// Creates a conditional branch with its resolved outcome.
    #[inline]
    pub fn cond_branch(srcs: [Option<Reg>; 2], outcome: BranchInfo) -> Instruction {
        Instruction {
            op: OpClass::CondBranch,
            dst: None,
            srcs,
            mem: None,
            branch: Some(outcome),
            pc: 0,
        }
    }

    /// Creates an indirect branch with its resolved outcome.
    #[inline]
    pub fn indirect_branch(src: Option<Reg>, outcome: BranchInfo) -> Instruction {
        Instruction {
            op: OpClass::IndirectBranch,
            dst: None,
            srcs: [src, None],
            mem: None,
            branch: Some(outcome),
            pc: 0,
        }
    }

    /// Returns a copy with the program counter set.
    #[inline]
    pub fn at_pc(mut self, pc: u64) -> Instruction {
        self.pc = pc;
        self
    }

    /// Number of register sources actually present.
    #[inline]
    pub fn src_count(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_some()).count()
    }

    /// Validates internal consistency (memory ops carry a [`MemRef`],
    /// branches carry a [`BranchInfo`], and vice versa).
    pub fn is_well_formed(&self) -> bool {
        let mem_ok = self.op.is_mem() == self.mem.is_some();
        let br_ok = if self.op.is_branch() {
            self.branch.is_some()
        } else {
            self.branch.is_none()
        };
        let dst_ok = match self.op {
            OpClass::Load => self.dst.is_some(),
            OpClass::Store | OpClass::Jump | OpClass::CondBranch | OpClass::IndirectBranch => {
                self.dst.is_none()
            }
            _ => true,
        };
        mem_ok && br_ok && dst_ok
    }
}

impl Default for Instruction {
    /// A well-formed single-cycle integer no-op.
    fn default() -> Instruction {
        Instruction::alu(OpClass::Other, None, [None, None])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_well_formed() {
        let l = Instruction::load(Reg::int(1), Some(Reg::int(0)), MemRef::new(64, 8));
        let s = Instruction::store(Some(Reg::int(1)), None, MemRef::new(128, 8));
        let b = Instruction::cond_branch([Some(Reg::int(1)), None], BranchInfo::new(true, 0x40));
        let a = Instruction::alu(OpClass::FpMul, Some(Reg::fp(0)), [Some(Reg::fp(1)), None]);
        let i = Instruction::indirect_branch(Some(Reg::int(2)), BranchInfo::new(true, 0x99));
        for inst in [l, s, b, a, i, Instruction::default()] {
            assert!(inst.is_well_formed(), "{inst:?}");
        }
    }

    #[test]
    fn ill_formed_detected() {
        let mut bad = Instruction::load(Reg::int(1), None, MemRef::new(0, 8));
        bad.mem = None;
        assert!(!bad.is_well_formed());

        let mut bad2 = Instruction::alu(OpClass::IntAlu, None, [None, None]);
        bad2.branch = Some(BranchInfo::new(false, 0));
        assert!(!bad2.is_well_formed());
    }

    #[test]
    fn src_count_counts_present_sources() {
        let a = Instruction::alu(
            OpClass::IntAlu,
            Some(Reg::int(0)),
            [Some(Reg::int(1)), Some(Reg::int(2))],
        );
        assert_eq!(a.src_count(), 2);
        assert_eq!(Instruction::default().src_count(), 0);
    }

    #[test]
    fn at_pc_sets_pc() {
        let i = Instruction::default().at_pc(0xdead);
        assert_eq!(i.pc, 0xdead);
    }

    #[test]
    fn instruction_is_small() {
        // Traces replay hundreds of millions of these; keep them compact.
        assert!(std::mem::size_of::<Instruction>() <= 64);
    }
}
