//! Flight recorder: a bounded ring of recent request/decision records.
//!
//! The serving path pushes one [`RequestRecord`] per finished request
//! (endpoint, trace id, status, latency, queue wait, error class,
//! degradation note). The ring is lock-free on the writer's hot path —
//! a single `fetch_add` claims a slot, each slot has its own mutex so
//! writers never contend unless the ring laps itself — and bounded, so
//! a misbehaving deployment can't grow memory.
//!
//! When something goes wrong (a 5xx, an SLO alert firing, a degradation
//! tier escalation) the daemon calls [`FlightRecorder::dump`], which
//! writes the ring's contents oldest-first as a JSONL postmortem
//! artifact under `target/obs/` — the "what were the last N requests
//! doing" file you want attached to a CI failure. Dumps are capped per
//! process so a crash loop can't fill the disk.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Per-process cap on postmortem dumps (a crash loop stops writing
/// artifacts after this many).
const MAX_DUMPS: u64 = 64;

/// Default global ring capacity.
const GLOBAL_CAPACITY: usize = 512;

/// One request's flight-recorder entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Monotonic sequence number (assigned by [`FlightRecorder::push`]).
    pub seq: u64,
    /// Milliseconds since the recording process's epoch.
    pub ts_ms: u64,
    /// 32-hex-digit trace id (empty when the request had no context).
    pub trace_id: String,
    /// Endpoint key (e.g. `predict`, `closed_loop`).
    pub endpoint: String,
    /// HTTP status returned.
    pub status: u16,
    /// End-to-end handling latency, microseconds.
    pub latency_us: u64,
    /// Time spent queued before a worker picked the request up.
    pub queue_us: u64,
    /// Error classification (e.g. `bad_request`, `backpressure`), empty
    /// for successes.
    pub error_class: String,
    /// Free-form annotation (degradation tier transitions, chaos notes).
    pub note: String,
}

impl RequestRecord {
    /// JSONL rendering (one compact object per line in dumps).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", self.seq.into()),
            ("ts_ms", self.ts_ms.into()),
            ("trace_id", self.trace_id.as_str().into()),
            ("endpoint", self.endpoint.as_str().into()),
            ("status", u64::from(self.status).into()),
            ("latency_us", self.latency_us.into()),
            ("queue_us", self.queue_us.into()),
            ("error_class", self.error_class.as_str().into()),
            ("note", self.note.as_str().into()),
        ])
    }
}

/// Bounded ring of the most recent [`RequestRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<RequestRecord>>>,
    head: AtomicU64,
    dumps: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` records.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (not just retained).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one request, overwriting the oldest entry once the ring
    /// is full. Returns the record's sequence number.
    pub fn push(&self, mut record: RequestRecord) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        let idx = (seq % self.slots.len() as u64) as usize;
        *self.slots[idx].lock().unwrap() = Some(record);
        seq
    }

    /// The retained records, oldest first.
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        let mut records: Vec<RequestRecord> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap().clone())
            .collect();
        records.sort_by_key(|r| r.seq);
        records
    }

    /// The `GET /v1/debug/requests` document: newest-first records plus
    /// ring stats.
    pub fn to_json(&self) -> Json {
        let mut records = self.snapshot();
        records.reverse();
        Json::obj(vec![
            ("capacity", (self.capacity() as u64).into()),
            ("pushed", self.pushed().into()),
            (
                "requests",
                Json::Arr(records.iter().map(RequestRecord::to_json).collect()),
            ),
        ])
    }

    /// Dumps the ring as a JSONL postmortem artifact
    /// `<dir>/postmortem-<reason>-<seq>.jsonl` (oldest record first,
    /// preceded by a header line naming the reason and — when the
    /// self-profiler has data — the hottest self-time paths at dump
    /// time). Returns the path,
    /// or `None` when the ring is empty, the per-process dump cap is
    /// reached, or the write fails (postmortems must never take the
    /// serving path down).
    pub fn dump(&self, dir: &Path, reason: &str) -> Option<PathBuf> {
        let records = self.snapshot();
        if records.is_empty() {
            return None;
        }
        if self.dumps.fetch_add(1, Ordering::Relaxed) >= MAX_DUMPS {
            return None;
        }
        if std::fs::create_dir_all(dir).is_err() {
            return None;
        }
        let slug: String = reason
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let last_seq = records.last().map_or(0, |r| r.seq);
        let path = dir.join(format!("postmortem-{slug}-{last_seq}.jsonl"));
        let mut header_fields = vec![
            ("postmortem", reason.into()),
            ("records", (records.len() as u64).into()),
            ("last_seq", last_seq.into()),
        ];
        // When the self-profiler is running, snapshot the hottest paths
        // at dump time: a postmortem should say not just what the last
        // N requests were, but where the process was spending its time.
        let hottest = crate::prof::snapshot().top_self(5);
        if !hottest.is_empty() {
            header_fields.push((
                "hottest_paths",
                Json::Arr(
                    hottest
                        .iter()
                        .map(|(stack, stat)| {
                            Json::obj(vec![
                                ("stack", stack.as_str().into()),
                                ("self_us", (stat.self_ns / 1_000).into()),
                                ("calls", stat.calls.into()),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        let header = Json::obj(header_fields);
        let mut body = String::with_capacity(records.len() * 160);
        body.push_str(&header.to_string());
        body.push('\n');
        for r in &records {
            body.push_str(&r.to_json().to_string());
            body.push('\n');
        }
        std::fs::write(&path, body).ok()?;
        Some(path)
    }
}

/// The process-global recorder used by the serve daemon.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: std::sync::OnceLock<FlightRecorder> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::new(GLOBAL_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(endpoint: &str, status: u16) -> RequestRecord {
        RequestRecord {
            seq: 0,
            ts_ms: 1,
            trace_id: "deadbeef".into(),
            endpoint: endpoint.into(),
            status,
            latency_us: 100,
            queue_us: 10,
            error_class: if status >= 400 {
                "err".into()
            } else {
                String::new()
            },
            note: String::new(),
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u16 {
            rec.push(record("predict", 200 + i));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(rec.pushed(), 10);
        // Oldest-first, retaining the final four pushes.
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn dump_writes_jsonl() {
        let rec = FlightRecorder::new(8);
        rec.push(record("predict", 200));
        rec.push(record("closed_loop", 503));
        let dir = std::env::temp_dir().join(format!("psca-recorder-test-{}", std::process::id()));
        let path = rec.dump(&dir, "http 5xx").expect("dump path");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = Json::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("postmortem").and_then(Json::as_str),
            Some("http 5xx")
        );
        let last = Json::parse(lines[2]).unwrap();
        assert_eq!(last.get("status").and_then(Json::as_u64), Some(503));
        assert_eq!(
            last.get("trace_id").and_then(Json::as_str),
            Some("deadbeef")
        );
        // Reason is slugged in the filename.
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("http_5xx"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_ring_does_not_dump() {
        let rec = FlightRecorder::new(4);
        assert_eq!(rec.dump(Path::new("/nonexistent"), "x"), None);
    }

    #[test]
    fn debug_document_is_newest_first() {
        let rec = FlightRecorder::new(4);
        rec.push(record("a", 200));
        rec.push(record("b", 200));
        let doc = rec.to_json();
        let reqs = doc.get("requests").and_then(Json::as_arr).unwrap();
        assert_eq!(reqs[0].get("endpoint").and_then(Json::as_str), Some("b"));
        assert_eq!(reqs[1].get("endpoint").and_then(Json::as_str), Some("a"));
        assert_eq!(doc.get("capacity").and_then(Json::as_u64), Some(4));
    }
}
