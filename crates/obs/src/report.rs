//! End-of-run aggregation: one JSON artifact plus a rendered table.
//!
//! A [`RunReport`] gathers per-phase wall times (recorded with
//! [`RunReport::phase`]), headline summary values (instructions/sec,
//! low-power residency, guardrail trips, ...), and a full snapshot of the
//! global metric registry — including every non-empty time-series
//! sampler, serialized under `"timeseries"` as `[x, y]` pairs and
//! additionally written as a `<run>.series.csv` artifact next to the
//! JSON. [`RunReport::write`] serializes to `target/obs/<run>.json` (or
//! any directory), publishes the JSON to the live `/report` endpoint when
//! the exporter is running, and [`RunReport::render`] produces the
//! human-readable table the `repro` binary prints.

use crate::json::Json;
use crate::metrics::{self, MetricsSnapshot};
use crate::span::SpanTimer;
use crate::{exporter, timeseries};
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Wall time of one named pipeline phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase name (e.g. `"fig8"`, `"corpus.hdtr"`).
    pub name: String,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

/// A headline summary value.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryValue {
    /// Count.
    U64(u64),
    /// Measurement.
    F64(f64),
    /// Label.
    Str(String),
}

impl SummaryValue {
    fn to_json(&self) -> Json {
        match self {
            SummaryValue::U64(v) => Json::UInt(*v),
            SummaryValue::F64(v) => Json::Num(*v),
            SummaryValue::Str(v) => Json::Str(v.clone()),
        }
    }

    fn render(&self) -> String {
        match self {
            SummaryValue::U64(v) => v.to_string(),
            SummaryValue::F64(v) => {
                if v.abs() >= 1000.0 {
                    format!("{v:.0}")
                } else {
                    format!("{v:.4}")
                }
            }
            SummaryValue::Str(v) => v.clone(),
        }
    }
}

impl From<u64> for SummaryValue {
    fn from(v: u64) -> SummaryValue {
        SummaryValue::U64(v)
    }
}

impl From<f64> for SummaryValue {
    fn from(v: f64) -> SummaryValue {
        SummaryValue::F64(v)
    }
}

impl From<&str> for SummaryValue {
    fn from(v: &str) -> SummaryValue {
        SummaryValue::Str(v.to_string())
    }
}

/// RAII phase handle returned by [`RunReport::phase`].
///
/// Also opens a [`SpanTimer`], so phases show up both in the report and
/// in the `span.*` histograms. The span's single clock snapshot is the
/// phase's wall time — the report row and the histogram record always
/// agree exactly.
pub struct PhaseGuard<'a> {
    report: &'a mut RunReport,
    name: String,
    span: Option<SpanTimer>,
}

impl PhaseGuard<'_> {
    /// Ends the phase, recording its wall time in the report.
    pub fn finish(self) {
        // Drop does the work.
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let wall_s = self
            .span
            .take()
            .map_or(0.0, |span| span.finish() as f64 / 1e9);
        self.report.phases.push(PhaseStat {
            name: std::mem::take(&mut self.name),
            wall_s,
        });
    }
}

/// Aggregated end-of-run artifact.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Identifier; becomes the artifact file name (`<run>.json`).
    pub run_id: String,
    /// Seconds since the Unix epoch at construction.
    pub started_unix: u64,
    /// Ordered per-phase wall times.
    pub phases: Vec<PhaseStat>,
    /// Ordered headline values.
    pub summary: Vec<(String, SummaryValue)>,
    created: Instant,
}

impl RunReport {
    /// Starts a report for run `run_id`.
    pub fn new(run_id: &str) -> RunReport {
        RunReport {
            run_id: run_id.to_string(),
            started_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            phases: Vec::new(),
            summary: Vec::new(),
            created: Instant::now(),
        }
    }

    /// Opens a timed phase; its wall time is recorded when the returned
    /// guard drops.
    pub fn phase(&mut self, name: &str) -> PhaseGuard<'_> {
        let span = SpanTimer::start(name);
        PhaseGuard {
            name: name.to_string(),
            span: Some(span),
            report: self,
        }
    }

    /// Records a phase measured externally.
    pub fn add_phase(&mut self, name: &str, wall_s: f64) {
        self.phases.push(PhaseStat {
            name: name.to_string(),
            wall_s,
        });
    }

    /// Sets (or overwrites) a headline summary value.
    pub fn set(&mut self, key: &str, value: impl Into<SummaryValue>) {
        let value = value.into();
        if let Some(slot) = self.summary.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.summary.push((key.to_string(), value));
        }
    }

    /// A headline value, if set.
    pub fn get(&self, key: &str) -> Option<&SummaryValue> {
        self.summary.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Total wall seconds since the report was created.
    pub fn total_wall_s(&self) -> f64 {
        self.created.elapsed().as_secs_f64()
    }

    /// The report as JSON, embedding a fresh snapshot of the global
    /// metric registry.
    pub fn to_json(&self) -> Json {
        self.to_json_with(&metrics::global().snapshot())
    }

    /// The report as JSON with an explicit metrics snapshot.
    pub fn to_json_with(&self, snap: &MetricsSnapshot) -> Json {
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("name", Json::Str(p.name.clone())),
                        ("wall_s", Json::Num(p.wall_s)),
                    ])
                })
                .collect(),
        );
        let summary = Json::Obj(
            self.summary
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let counters = Json::Obj(
            snap.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            snap.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            snap.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj(vec![
                            ("count", Json::UInt(h.count)),
                            ("sum", Json::UInt(h.sum)),
                            ("min", Json::UInt(h.min)),
                            ("max", Json::UInt(h.max)),
                            ("p50", Json::UInt(h.p50)),
                            ("p95", Json::UInt(h.p95)),
                            ("p99", Json::UInt(h.p99)),
                        ]),
                    )
                })
                .collect(),
        );
        let series = Json::Obj(
            snap.series
                .iter()
                .map(|(k, pts)| {
                    (
                        k.clone(),
                        Json::Arr(
                            pts.iter()
                                .map(|(x, y)| Json::Arr(vec![Json::UInt(*x), Json::Num(*y)]))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        Json::obj(vec![
            ("run_id", Json::Str(self.run_id.clone())),
            ("started_unix", Json::UInt(self.started_unix)),
            ("total_wall_s", Json::Num(self.total_wall_s())),
            ("phases", phases),
            ("summary", summary),
            ("timeseries", series),
            (
                "metrics",
                Json::obj(vec![
                    ("counters", counters),
                    ("gauges", gauges),
                    ("histograms", histograms),
                ]),
            ),
        ])
    }

    /// Writes `<dir>/<run_id>.json` (plus `<run_id>.series.csv` when any
    /// time-series was recorded) from a fresh global snapshot; returns the
    /// JSON path.
    ///
    /// # Errors
    /// Propagates filesystem errors (unwritable directory, ...).
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        self.write_with(dir, &metrics::global().snapshot())
    }

    /// [`RunReport::write`] with an explicit metrics snapshot. Also
    /// publishes the JSON to the `/report` endpoint of a running
    /// [`crate::exporter`] server.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_with(&self, dir: &Path, snap: &MetricsSnapshot) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let stem = sanitize(&self.run_id);
        let path = dir.join(format!("{stem}.json"));
        let json = self.to_json_with(snap).to_string();
        std::fs::write(&path, &json)?;
        exporter::publish_report(&json);
        if !snap.series.is_empty() {
            let csv_path = dir.join(format!("{stem}.series.csv"));
            std::fs::write(&csv_path, timeseries::series_to_csv(&snap.series))?;
        }
        Ok(path)
    }

    /// Writes to the conventional artifact directory `target/obs/`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        self.write(Path::new("target/obs"))
    }

    /// Renders the human-readable end-of-run table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let title = format!("run report · {}", self.run_id);
        out.push_str(&format!("{title}\n{}\n", "=".repeat(title.len())));
        if !self.phases.is_empty() {
            let total: f64 = self.phases.iter().map(|p| p.wall_s).sum();
            out.push_str("phase                                    wall      share\n");
            out.push_str("-----                                    ----      -----\n");
            for p in &self.phases {
                let share = if total > 0.0 {
                    100.0 * p.wall_s / total
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "{:<40} {:>8.2}s {:>8.1}%\n",
                    p.name, p.wall_s, share
                ));
            }
            out.push_str(&format!("{:<40} {total:>8.2}s\n", "total (phases)"));
        }
        if !self.summary.is_empty() {
            out.push('\n');
            out.push_str("summary\n-------\n");
            for (k, v) in &self.summary {
                out.push_str(&format!("{:<40} {}\n", k, v.render()));
            }
        }
        out
    }
}

fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_set_overwrites() {
        let mut r = RunReport::new("t");
        r.set("x", 1u64);
        r.set("x", 2u64);
        assert_eq!(r.get("x"), Some(&SummaryValue::U64(2)));
        assert_eq!(r.summary.len(), 1);
    }

    #[test]
    fn phase_guard_records_wall_time() {
        let mut r = RunReport::new("t");
        {
            let g = r.phase("warmup");
            g.finish();
        }
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].name, "warmup");
        assert!(r.phases[0].wall_s >= 0.0);
    }

    #[test]
    fn json_contains_headline_sections() {
        let mut r = RunReport::new("json-shape");
        r.set("sim_insts_per_sec", 1.5e6);
        r.add_phase("fig4", 0.25);
        let s = r.to_json_with(&MetricsSnapshot::default()).to_string();
        assert!(s.contains(r#""run_id":"json-shape""#));
        assert!(s.contains(r#""phases":[{"name":"fig4","wall_s":0.25}]"#));
        assert!(s.contains(r#""sim_insts_per_sec":1500000"#));
        assert!(s.contains(r#""metrics""#));
    }

    #[test]
    fn file_name_is_sanitized() {
        assert_eq!(sanitize("a/b c"), "a_b_c");
        assert_eq!(sanitize("fig8-quick_1.2"), "fig8-quick_1.2");
    }

    #[test]
    fn render_mentions_every_phase_and_summary_key() {
        let mut r = RunReport::new("render");
        r.add_phase("train", 1.0);
        r.add_phase("eval", 3.0);
        r.set("guardrail_trips", 4u64);
        let t = r.render();
        assert!(t.contains("train"));
        assert!(t.contains("eval"));
        assert!(t.contains("guardrail_trips"));
        assert!(t.contains("75.0%"));
    }
}
