//! `psca-prof`: a dependency-free hierarchical self-profiler.
//!
//! Rides the existing [`crate::SpanTimer`] machinery: when profiling is
//! enabled (`PSCA_PROF=1` or [`set_enabled`]), every span entry pushes a
//! frame onto a per-thread stack and every span exit folds the frame's
//! wall time into a call-tree node keyed by the `;`-joined stack of
//! enclosing span names — the *collapsed-stack* key flamegraph tooling
//! consumes directly. Each node tracks call count, total wall time, and
//! **self** time (total minus the time attributed to child frames), so a
//! sorted self-time table points at the code that actually burns cycles
//! rather than whatever sits at the top of the call tree.
//!
//! Aggregation mirrors the series-shard design ([`crate::shard`]):
//! frames finishing inside a `psca_exec` sweep cell are folded into that
//! cell's [`Profile`] shard and merged into the process-global profile
//! when the sweep replays its recordings; frames finishing outside a
//! cell merge straight into the global profile. Node statistics are
//! commutative sums, so the merge is associative — any shard grouping
//! yields the same totals (tested in `tests/observability.rs`).
//!
//! The profiler is an observer only: it never touches simulation state,
//! RNG streams, or response bodies, so profiled and unprofiled runs are
//! bit-identical in everything but the profile artifacts themselves.
//! When disabled (the default) the per-span cost is one relaxed atomic
//! load.
//!
//! Renderings:
//! - [`Profile::folded`] — collapsed-stack text (`a;b;c <self_us>` per
//!   line), loadable by `inferno-flamegraph` / `flamegraph.pl`;
//! - [`Profile::self_table`] / [`Profile::render_table`] — nodes sorted
//!   by self time;
//! - [`Profile::to_json`] — the machine-readable summary `repro
//!   profile` writes and `GET /v1/profile` serves.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when the profiler is recording span frames.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns profiling on or off (tests, `repro profile`).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables profiling when `PSCA_PROF` is set to `1`, `true`, or `on`.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("PSCA_PROF") {
        if matches!(v.trim(), "1" | "true" | "on") {
            set_enabled(true);
        }
    }
}

/// Aggregated statistics for one call-tree node (one distinct stack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStat {
    /// Times a span completed with exactly this stack.
    pub calls: u64,
    /// Total wall nanoseconds across those completions.
    pub total_ns: u64,
    /// Wall nanoseconds not attributed to child frames.
    pub self_ns: u64,
}

/// A merged call-tree profile: collapsed-stack key → [`NodeStat`].
///
/// Keys are `;`-joined span *names* (not the dot-joined span paths —
/// names may themselves contain dots), ordered deterministically by the
/// underlying `BTreeMap`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    nodes: BTreeMap<String, NodeStat>,
}

impl Profile {
    /// Folds one completed frame into the tree.
    pub fn record(&mut self, stack: &str, total_ns: u64, self_ns: u64) {
        let node = self.nodes.entry(stack.to_string()).or_default();
        node.calls += 1;
        node.total_ns += total_ns;
        node.self_ns += self_ns;
    }

    /// Merges another profile into this one. Node stats are sums, so
    /// the operation is commutative and associative: merging per-cell
    /// shards in any grouping produces the same profile.
    pub fn merge(&mut self, other: &Profile) {
        for (stack, stat) in &other.nodes {
            let node = self.nodes.entry(stack.clone()).or_default();
            node.calls += stat.calls;
            node.total_ns += stat.total_ns;
            node.self_ns += stat.self_ns;
        }
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node for an exact collapsed-stack key, if recorded.
    pub fn node(&self, stack: &str) -> Option<&NodeStat> {
        self.nodes.get(stack)
    }

    /// All `(stack, stat)` pairs in deterministic (key) order.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, &NodeStat)> {
        self.nodes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Collapsed-stack rendering: one `stack value` line per node, where
    /// the value is the node's **self** time in integer microseconds —
    /// the convention `inferno-flamegraph` and `flamegraph.pl` consume.
    /// Lines are sorted by stack key, so two equal profiles render
    /// byte-identically.
    pub fn folded(&self) -> String {
        let mut out = String::with_capacity(self.nodes.len() * 48);
        for (stack, stat) in &self.nodes {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&(stat.self_ns / 1_000).to_string());
            out.push('\n');
        }
        out
    }

    /// Parses collapsed-stack text back into a profile.
    ///
    /// Only self time survives the folded format (call counts and child
    /// attribution do not), so parsed nodes report `calls = 0` and
    /// `total_ns = self_ns`. Returns `None` on any malformed line (no
    /// value, non-numeric value, or an empty stack).
    pub fn parse_folded(text: &str) -> Option<Profile> {
        let mut profile = Profile::default();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let (stack, value) = line.rsplit_once(' ')?;
            if stack.is_empty() {
                return None;
            }
            let self_us: u64 = value.parse().ok()?;
            let node = profile.nodes.entry(stack.to_string()).or_default();
            node.self_ns += self_us * 1_000;
            node.total_ns += self_us * 1_000;
        }
        Some(profile)
    }

    /// Nodes sorted by self time, heaviest first (ties break on the
    /// stack key, so the order is deterministic).
    pub fn self_table(&self) -> Vec<(&str, &NodeStat)> {
        let mut rows: Vec<(&str, &NodeStat)> =
            self.nodes.iter().map(|(k, v)| (k.as_str(), v)).collect();
        rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.0.cmp(b.0)));
        rows
    }

    /// The `n` heaviest stacks by self time as `(stack, stat)` pairs.
    pub fn top_self(&self, n: usize) -> Vec<(String, NodeStat)> {
        self.self_table()
            .into_iter()
            .take(n)
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Human-readable self-time table (heaviest stacks first).
    pub fn render_table(&self, max_rows: usize) -> String {
        let rows = self.self_table();
        let mut out = String::new();
        out.push_str(&format!(
            "{:>12} {:>12} {:>8}  {}\n",
            "self_us", "total_us", "calls", "stack"
        ));
        for (stack, stat) in rows.iter().take(max_rows) {
            out.push_str(&format!(
                "{:>12} {:>12} {:>8}  {}\n",
                stat.self_ns / 1_000,
                stat.total_ns / 1_000,
                stat.calls,
                stack
            ));
        }
        if rows.len() > max_rows {
            out.push_str(&format!("... {} more stacks\n", rows.len() - max_rows));
        }
        out
    }

    /// Machine-readable summary: every node, heaviest self time first.
    pub fn to_json(&self) -> Json {
        let nodes: Vec<Json> = self
            .self_table()
            .into_iter()
            .map(|(stack, stat)| {
                Json::obj(vec![
                    ("stack", Json::Str(stack.to_string())),
                    ("calls", Json::UInt(stat.calls)),
                    ("total_us", Json::UInt(stat.total_ns / 1_000)),
                    ("self_us", Json::UInt(stat.self_ns / 1_000)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("profiler", Json::Str("psca-prof".to_string())),
            ("stacks", Json::UInt(self.nodes.len() as u64)),
            ("nodes", Json::Arr(nodes)),
        ])
    }
}

/// One live frame on a thread's profiling stack.
#[derive(Debug)]
struct Frame {
    name: String,
    /// Wall nanoseconds already attributed to completed child frames.
    child_ns: u64,
}

thread_local! {
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    /// Per-cell capture, mirroring the series shard: `Some` while the
    /// thread executes a sweep cell.
    static CELL: RefCell<Option<Profile>> = const { RefCell::new(None) };
}

/// Pushes a frame for a span entering on this thread; returns the frame
/// depth the matching [`frame_exit`] must pass back. Called by
/// [`crate::SpanTimer::start`] when profiling is enabled.
pub(crate) fn frame_enter(name: &str) -> usize {
    // The folded grammar reserves ';' (stack separator), ' ' (value
    // separator), and newlines; span names never legitimately contain
    // them, but a stray one must not corrupt the artifact.
    let clean: String = name
        .chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect();
    FRAMES.with(|frames| {
        let mut frames = frames.borrow_mut();
        frames.push(Frame {
            name: clean,
            child_ns: 0,
        });
        frames.len()
    })
}

/// Pops the frame pushed at `depth` and folds its `total_ns` wall time
/// into the active sink (cell shard if one is active, the global
/// profile otherwise). Called by the matching span's drop.
pub(crate) fn frame_exit(depth: usize, total_ns: u64) {
    let folded = FRAMES.with(|frames| {
        let mut frames = frames.borrow_mut();
        // Escaped child spans truncate here, same as the span stack.
        frames.truncate(depth);
        let frame = frames.pop()?;
        let self_ns = total_ns.saturating_sub(frame.child_ns);
        if let Some(parent) = frames.last_mut() {
            parent.child_ns += total_ns;
        }
        let mut stack = String::with_capacity(depth * 16);
        for f in frames.iter() {
            stack.push_str(&f.name);
            stack.push(';');
        }
        stack.push_str(&frame.name);
        Some((stack, self_ns))
    });
    let Some((stack, self_ns)) = folded else {
        return;
    };
    let captured = CELL.with(|cell| match cell.borrow_mut().as_mut() {
        Some(profile) => {
            profile.record(&stack, total_ns, self_ns);
            true
        }
        None => false,
    });
    if !captured {
        global().lock().unwrap().record(&stack, total_ns, self_ns);
    }
}

/// Starts capturing this thread's completed frames into a cell-local
/// profile shard (called by [`crate::shard::begin_cell`]).
pub(crate) fn cell_begin() {
    CELL.with(|cell| *cell.borrow_mut() = Some(Profile::default()));
}

/// Ends the cell capture and returns its shard (empty when none was
/// active).
pub(crate) fn cell_take() -> Profile {
    CELL.with(|cell| cell.borrow_mut().take())
        .unwrap_or_default()
}

fn global() -> &'static Mutex<Profile> {
    static GLOBAL: OnceLock<Mutex<Profile>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Profile::default()))
}

/// Merges a shard (e.g. a sweep cell's capture) into the process-global
/// profile.
pub fn merge_global(shard: &Profile) {
    if shard.is_empty() {
        return;
    }
    global().lock().unwrap().merge(shard);
}

/// A copy of the process-global profile.
pub fn snapshot() -> Profile {
    global().lock().unwrap().clone()
}

/// Takes the process-global profile, leaving it empty — the
/// "since last scrape" semantics `GET /v1/profile` uses.
pub fn drain() -> Profile {
    std::mem::take(&mut *global().lock().unwrap())
}

/// Clears the process-global profile (per-run scoping; tests).
pub fn reset() {
    global().lock().unwrap().nodes.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        let mut p = Profile::default();
        p.record("a", 10_000, 4_000);
        p.record("a;b", 6_000, 6_000);
        p.record("a", 2_000, 2_000);
        p
    }

    #[test]
    fn record_accumulates_calls_and_time() {
        let p = sample();
        let a = p.node("a").unwrap();
        assert_eq!(a.calls, 2);
        assert_eq!(a.total_ns, 12_000);
        assert_eq!(a.self_ns, 6_000);
        assert_eq!(p.node("a;b").unwrap().calls, 1);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let (a, b, mut c) = (sample(), sample(), Profile::default());
        c.record("c", 5_000, 5_000);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab, ba);
    }

    #[test]
    fn folded_roundtrips_through_parse() {
        let p = sample();
        let folded = p.folded();
        assert!(folded.contains("a;b 6\n"));
        let parsed = Profile::parse_folded(&folded).unwrap();
        assert_eq!(parsed.folded(), folded);
    }

    #[test]
    fn parse_folded_rejects_malformed_lines() {
        assert!(Profile::parse_folded("no_value\n").is_none());
        assert!(Profile::parse_folded("stack not_a_number\n").is_none());
        assert!(Profile::parse_folded(" 5\n").is_none());
        assert!(Profile::parse_folded("").is_some());
    }

    #[test]
    fn self_table_sorts_heaviest_first() {
        let mut p = sample();
        p.record("zz", 9_000, 9_000);
        let rows = p.self_table();
        assert_eq!(rows[0].0, "zz");
        // "a" and "a;b" tie on self time (6µs each); ties break on the
        // stack key so the order is deterministic.
        assert_eq!(rows[1].0, "a");
        assert_eq!(rows[2].0, "a;b");
        assert_eq!(p.top_self(1)[0].0, "zz");
    }

    #[test]
    fn frame_attribution_computes_self_time() {
        // parent(100us) > child(60us): parent self = 40us.
        let d1 = frame_enter("pf_parent");
        let d2 = frame_enter("pf_child");
        // Route to a cell shard so this test never races the global
        // profile with other tests.
        cell_begin();
        // Frames were entered before the cell began; exits record into
        // the active cell sink regardless.
        frame_exit(d2, 60_000);
        frame_exit(d1, 100_000);
        let shard = cell_take();
        let parent = shard.node("pf_parent").unwrap();
        assert_eq!(parent.total_ns, 100_000);
        assert_eq!(parent.self_ns, 40_000);
        let child = shard.node("pf_parent;pf_child").unwrap();
        assert_eq!(child.self_ns, 60_000);
        assert_eq!(child.calls, 1);
    }

    #[test]
    fn names_are_sanitized_for_the_folded_grammar() {
        cell_begin();
        let d = frame_enter("weird name;with sep");
        frame_exit(d, 1_000);
        let shard = cell_take();
        assert!(shard.node("weird_name_with_sep").is_some());
        let folded = shard.folded();
        assert_eq!(folded.lines().count(), 1);
        assert!(Profile::parse_folded(&folded).is_some());
    }

    #[test]
    fn json_summary_orders_by_self_time() {
        let mut p = sample();
        p.record("zz", 9_000, 9_000);
        let doc = p.to_json();
        assert_eq!(doc.get("stacks").and_then(Json::as_u64), Some(3));
        let nodes = doc.get("nodes").and_then(Json::as_arr).unwrap();
        assert_eq!(nodes[0].get("stack").and_then(Json::as_str), Some("zz"));
        assert_eq!(nodes[0].get("self_us").and_then(Json::as_u64), Some(9));
        assert_eq!(nodes[1].get("self_us").and_then(Json::as_u64), Some(6));
    }
}
