//! Live metrics over HTTP: a std-only TCP server for scrapers.
//!
//! [`MetricsServer::start`] binds a [`std::net::TcpListener`] and serves
//! three read-only endpoints from a background thread:
//!
//! | Path | Content |
//! |---|---|
//! | `/metrics` | the global registry in Prometheus text exposition format |
//! | `/healthz` | `ok` (liveness probe) |
//! | `/report`  | the most recently published [`crate::RunReport`] JSON |
//!
//! Prometheus names map dot-separated metric names with `.` → `_`
//! (`cpu.sim.instructions` → `cpu_sim_instructions`); counters and gauges
//! export directly, histograms export as summaries (`{quantile="..."}`
//! series plus `_sum`/`_count`), and each time-series contributes its most
//! recent value as a `<name>_last` gauge.
//!
//! Opt-in via the `PSCA_METRICS_ADDR=<host:port>` environment variable
//! (see [`serve_from_env`]) or a binary flag like `repro --serve-metrics`.
//! Port `0` asks the OS for a free port; the bound address is printed to
//! stderr and available from [`MetricsServer::local_addr`].

use crate::metrics::{self, MetricsSnapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Background HTTP server exposing the global metric registry.
#[derive(Debug)]
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9185`, port 0 for OS-assigned) and
    /// starts serving on a background thread.
    ///
    /// # Errors
    /// Propagates bind failures (port in use, bad address).
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("psca-obs-exporter".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        handle_connection(stream);
                    }
                }
            })?;
        Ok(MetricsServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 2048];
    let mut filled = 0usize;
    // Read until the end of the request head (we ignore the body).
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf[..filled]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
        return;
    }
    match path {
        "/metrics" => {
            let body = prometheus_text(&metrics::global().snapshot());
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n"),
        "/report" => match latest_report().lock().unwrap().clone() {
            Some(json) => respond(&mut stream, 200, "application/json", &json),
            None => respond(
                &mut stream,
                404,
                "text/plain; charset=utf-8",
                "no run report published yet\n",
            ),
        },
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Maps a dot-separated metric name onto the Prometheus grammar:
/// `.` becomes `_`, any other invalid character becomes `_`, and a
/// leading digit is prefixed with `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", fmt_f64(*v)));
    }
    for (name, h) in &snap.histograms {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        if let Some(e) = snap.exemplars.get(name) {
            // OpenMetrics-style exemplar, emitted as a label so plain
            // Prometheus text parsers still accept the line.
            out.push_str(&format!(
                "{n}_exemplar{{trace_id=\"{}\"}} {}\n",
                e.trace_id, e.value
            ));
        }
    }
    for (name, pts) in &snap.series {
        if let Some((_, y)) = pts.last() {
            let n = prometheus_name(&format!("{name}_last"));
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", fmt_f64(*y)));
        }
    }
    out
}

fn latest_report() -> &'static Mutex<Option<String>> {
    static LATEST: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    LATEST.get_or_init(|| Mutex::new(None))
}

/// Publishes a run-report JSON document to the `/report` endpoint
/// (called by [`crate::RunReport::write`]).
pub fn publish_report(json: &str) {
    *latest_report().lock().unwrap() = Some(json.to_string());
}

fn global_server() -> &'static Mutex<Option<MetricsServer>> {
    static SERVER: OnceLock<Mutex<Option<MetricsServer>>> = OnceLock::new();
    SERVER.get_or_init(|| Mutex::new(None))
}

/// Starts the process-global exporter on `addr` unless one is already
/// running; returns the bound address either way, or `None` on bind
/// failure (reported to stderr).
pub fn serve(addr: &str) -> Option<SocketAddr> {
    let mut guard = global_server().lock().unwrap();
    if let Some(server) = guard.as_ref() {
        return Some(server.local_addr());
    }
    match MetricsServer::start(addr) {
        Ok(server) => {
            let bound = server.local_addr();
            eprintln!("psca-obs: serving /metrics /healthz /report on http://{bound}");
            *guard = Some(server);
            Some(bound)
        }
        Err(e) => {
            eprintln!("psca-obs: cannot bind metrics exporter on {addr}: {e}");
            None
        }
    }
}

/// Starts the process-global exporter when `PSCA_METRICS_ADDR` is set.
pub fn serve_from_env() -> Option<SocketAddr> {
    match std::env::var("PSCA_METRICS_ADDR") {
        Ok(addr) if !addr.trim().is_empty() => serve(addr.trim()),
        _ => None,
    }
}

/// The process-global exporter's address, if one is running.
pub fn global_addr() -> Option<SocketAddr> {
    global_server()
        .lock()
        .unwrap()
        .as_ref()
        .map(|s| s.local_addr())
}

/// Stops the process-global exporter, if one is running.
pub fn shutdown_global() {
    if let Some(server) = global_server().lock().unwrap().take() {
        server.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;

    #[test]
    fn prometheus_names_map_dots_to_underscores() {
        assert_eq!(
            prometheus_name("cpu.sim.instructions"),
            "cpu_sim_instructions"
        );
        assert_eq!(prometheus_name("span.repro.fig8"), "span_repro_fig8");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
    }

    #[test]
    fn exposition_covers_all_metric_kinds() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a.count".into(), 3);
        snap.gauges.insert("b.level".into(), 1.5);
        snap.histograms.insert(
            "c.lat".into(),
            HistogramSummary {
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                p50: 10,
                p95: 20,
                p99: 20,
            },
        );
        snap.exemplars.insert(
            "c.lat".into(),
            crate::metrics::Exemplar {
                value: 20,
                trace_id: "cafe".into(),
            },
        );
        snap.series.insert("d.ipc".into(), vec![(0, 2.0), (1, 2.5)]);
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE a_count counter\na_count 3\n"));
        assert!(text.contains("# TYPE b_level gauge\nb_level 1.5\n"));
        assert!(text.contains("c_lat{quantile=\"0.5\"} 10\n"));
        assert!(text.contains("c_lat_sum 30\nc_lat_count 2\n"));
        assert!(text.contains("c_lat_exemplar{trace_id=\"cafe\"} 20\n"));
        assert!(text.contains("# TYPE d_ipc_last gauge\nd_ipc_last 2.5\n"));
    }
}
