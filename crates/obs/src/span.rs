//! RAII span timers.
//!
//! A [`SpanTimer`] measures the wall time between construction and drop
//! and records it (in nanoseconds) into the global histogram
//! `span.<path>`, where `<path>` is the dot-joined stack of enclosing
//! spans on the current thread — so nested spans produce distinct
//! histograms (`span.repro.fig8` inside `span.repro`). Entering and
//! leaving a span also emits `span.enter`/`span.exit` events at
//! [`Level::Trace`], and — when `PSCA_TRACE` recording is active
//! ([`crate::trace`]) — a Chrome trace-event *complete* record, so spans
//! render as nested duration bars in Perfetto.

use crate::event::{emit, FieldValue, Level};
use crate::{metrics, trace};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Measures one span of work; records on drop.
#[derive(Debug)]
pub struct SpanTimer {
    path: String,
    start: Instant,
    depth_on_entry: usize,
    /// Trace-relative start in µs; `u64::MAX` when recording was off at
    /// span entry (avoids locking the recorder on drop).
    trace_ts_us: u64,
}

impl SpanTimer {
    /// Starts a span named `name`, nested under any active spans on this
    /// thread.
    pub fn start(name: &str) -> SpanTimer {
        let (path, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_string()
            } else {
                format!("{}.{}", stack.last().unwrap(), name)
            };
            stack.push(path.clone());
            (path, stack.len())
        });
        emit(
            Level::Trace,
            "span.enter",
            &[("span", FieldValue::Str(path.clone()))],
        );
        SpanTimer {
            path,
            start: Instant::now(),
            depth_on_entry: depth,
            trace_ts_us: if trace::enabled() {
                trace::now_us()
            } else {
                u64::MAX
            },
        }
    }

    /// The full dot-joined span path (`parent.child`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Elapsed time so far, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        metrics::global()
            .histogram(&format!("span.{}", self.path))
            .record(ns);
        if self.trace_ts_us != u64::MAX && trace::enabled() {
            trace::complete(&self.path, self.trace_ts_us, ns / 1_000);
        }
        emit(
            Level::Trace,
            "span.exit",
            &[
                ("span", FieldValue::Str(self.path.clone())),
                ("wall_ns", FieldValue::U64(ns)),
            ],
        );
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans normally drop in LIFO order; if a span escaped its
            // scope, truncate back to this span's depth to stay sane.
            stack.truncate(self.depth_on_entry.saturating_sub(1));
        });
    }
}

/// The current thread's active span path, if any.
pub fn current_path() -> Option<String> {
    SPAN_STACK.with(|stack| stack.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_dotted_paths() {
        assert_eq!(current_path(), None);
        let outer = SpanTimer::start("outer_span_test");
        assert_eq!(outer.path(), "outer_span_test");
        {
            let inner = SpanTimer::start("inner");
            assert_eq!(inner.path(), "outer_span_test.inner");
            assert_eq!(current_path().as_deref(), Some("outer_span_test.inner"));
        }
        assert_eq!(current_path().as_deref(), Some("outer_span_test"));
        drop(outer);
        assert_eq!(current_path(), None);
    }

    #[test]
    fn drop_records_into_span_histogram() {
        {
            let _t = SpanTimer::start("span_histogram_roundtrip");
        }
        let h = metrics::global().histogram("span.span_histogram_roundtrip");
        assert!(h.count() >= 1);
    }
}
