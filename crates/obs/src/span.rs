//! RAII span timers.
//!
//! A [`SpanTimer`] measures the wall time between construction and drop
//! and records it (in nanoseconds) into the global histogram
//! `span.<path>`, where `<path>` is the dot-joined stack of enclosing
//! spans on the current thread — so nested spans produce distinct
//! histograms (`span.repro.fig8` inside `span.repro`). Entering and
//! leaving a span also emits `span.enter`/`span.exit` events at
//! [`Level::Trace`], and — when `PSCA_TRACE` recording is active
//! ([`crate::trace`]) — a Chrome trace-event *complete* record, so spans
//! render as nested duration bars in Perfetto.
//!
//! When the hierarchical profiler is on ([`crate::prof`], `PSCA_PROF=1`)
//! each span additionally maintains a profiling frame, so call counts
//! and self-vs-total wall time accumulate per collapsed stack.
//!
//! The clock is read **once** per span exit: the histogram record, the
//! Perfetto duration, the `span.exit` event's `wall_ns` field, and the
//! profiler frame all report that same snapshot (callers can observe it
//! via [`SpanTimer::finish`]).

use crate::event::{emit, FieldValue, Level};
use crate::{metrics, prof, trace};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Measures one span of work; records on drop.
#[derive(Debug)]
pub struct SpanTimer {
    path: String,
    start: Instant,
    depth_on_entry: usize,
    /// Trace-relative start in µs; `u64::MAX` when recording was off at
    /// span entry (avoids locking the recorder on drop).
    trace_ts_us: u64,
    /// Profiler frame depth; `usize::MAX` when profiling was off at
    /// span entry (the frame stack must stay balanced even if the
    /// profiler is toggled mid-span).
    prof_depth: usize,
    /// Set by [`SpanTimer::finish`] so drop does not record twice.
    recorded: bool,
}

impl SpanTimer {
    /// Starts a span named `name`, nested under any active spans on this
    /// thread.
    pub fn start(name: &str) -> SpanTimer {
        let (path, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_string()
            } else {
                format!("{}.{}", stack.last().unwrap(), name)
            };
            stack.push(path.clone());
            (path, stack.len())
        });
        let prof_depth = if prof::enabled() {
            prof::frame_enter(name)
        } else {
            usize::MAX
        };
        emit(
            Level::Trace,
            "span.enter",
            &[("span", FieldValue::Str(path.clone()))],
        );
        SpanTimer {
            path,
            start: Instant::now(),
            depth_on_entry: depth,
            trace_ts_us: if trace::enabled() {
                trace::now_us()
            } else {
                u64::MAX
            },
            prof_depth,
            recorded: false,
        }
    }

    /// The full dot-joined span path (`parent.child`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Elapsed time so far, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Ends the span and returns the recorded wall nanoseconds — the
    /// exact value the histogram, trace event, and profiler received,
    /// from a single clock read. Use this instead of timing the span
    /// region with a second `Instant` (which would report a slightly
    /// different duration than the span's own record).
    pub fn finish(mut self) -> u64 {
        self.record_exit()
    }

    /// Records the span exit exactly once; shared by `finish` and drop.
    fn record_exit(&mut self) -> u64 {
        // Single clock snapshot: every consumer below sees the same
        // duration.
        let ns = self.start.elapsed().as_nanos() as u64;
        self.recorded = true;
        metrics::global()
            .histogram(&format!("span.{}", self.path))
            .record(ns);
        if self.trace_ts_us != u64::MAX && trace::enabled() {
            trace::complete(&self.path, self.trace_ts_us, ns / 1_000);
        }
        if self.prof_depth != usize::MAX {
            prof::frame_exit(self.prof_depth, ns);
        }
        emit(
            Level::Trace,
            "span.exit",
            &[
                ("span", FieldValue::Str(self.path.clone())),
                ("wall_ns", FieldValue::U64(ns)),
            ],
        );
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans normally drop in LIFO order; if a span escaped its
            // scope, truncate back to this span's depth to stay sane.
            stack.truncate(self.depth_on_entry.saturating_sub(1));
        });
        ns
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if !self.recorded {
            self.record_exit();
        }
    }
}

/// The current thread's active span path, if any.
pub fn current_path() -> Option<String> {
    SPAN_STACK.with(|stack| stack.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_dotted_paths() {
        assert_eq!(current_path(), None);
        let outer = SpanTimer::start("outer_span_test");
        assert_eq!(outer.path(), "outer_span_test");
        {
            let inner = SpanTimer::start("inner");
            assert_eq!(inner.path(), "outer_span_test.inner");
            assert_eq!(current_path().as_deref(), Some("outer_span_test.inner"));
        }
        assert_eq!(current_path().as_deref(), Some("outer_span_test"));
        drop(outer);
        assert_eq!(current_path(), None);
    }

    #[test]
    fn drop_records_into_span_histogram() {
        {
            let _t = SpanTimer::start("span_histogram_roundtrip");
        }
        let h = metrics::global().histogram("span.span_histogram_roundtrip");
        assert!(h.count() >= 1);
    }

    #[test]
    fn finish_reports_the_recorded_duration_once() {
        let before = metrics::global().histogram("span.span_finish_once").count();
        let t = SpanTimer::start("span_finish_once");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ns = t.finish();
        assert!(ns >= 1_000_000, "slept 1ms but finish() saw {ns}ns");
        let h = metrics::global().histogram("span.span_finish_once");
        assert_eq!(h.count(), before + 1, "finish must record exactly once");
        // The histogram saw the same single snapshot finish returned.
        assert!(h.sum() >= ns);
        assert_eq!(current_path(), None);
    }
}
