//! Lock-free metric primitives behind a global registry.
//!
//! Counters and gauges are single atomics; histograms are log-linear
//! (power-of-two majors split into 8 linear sub-buckets, ~9% relative
//! error) with every bucket an independent atomic, so recording from the
//! simulator hot loop is wait-free and allocation-free. The registry is
//! only locked when a metric handle is first created — call sites should
//! look a handle up once (or once per interval) and then operate on the
//! returned `Arc`.

use crate::timeseries::TimeSeries;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and per-run scoping).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins floating-point level.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of linear sub-buckets per power-of-two major bucket.
const SUB_BUCKETS: usize = 8;
/// Major buckets cover 2^0 .. 2^63; values below 1.0 land in bucket 0.
const MAJORS: usize = 64;
const NUM_BUCKETS: usize = MAJORS * SUB_BUCKETS;

/// Log-linear histogram of non-negative samples.
///
/// Bucket resolution is `1/8` of each power-of-two range, bounding the
/// relative quantile error at ~9%. Samples are recorded as `u64` "ticks";
/// for durations the convention across the workspace is **nanoseconds**.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    exemplar: Mutex<Option<Exemplar>>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplar: Mutex::new(None),
        }
    }
}

/// A sample worth investigating, linking a histogram's tail back to the
/// trace that produced it (OpenMetrics-style exemplar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// The recorded sample value.
    pub value: u64,
    /// 32-hex-digit trace id of the request that recorded it.
    pub trace_id: String,
}

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize; // exact for tiny values
    }
    let major = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (major.saturating_sub(3))) & (SUB_BUCKETS as u64 - 1)) as usize;
    (major * SUB_BUCKETS + sub).min(NUM_BUCKETS - 1)
}

/// Lower edge of a bucket (used to report quantiles).
fn bucket_low(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let major = idx / SUB_BUCKETS;
    let sub = idx % SUB_BUCKETS;
    let base = 1u64 << major;
    base + (sub as u64) * (base / SUB_BUCKETS as u64)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records one sample and, when it sets a new high-water mark,
    /// remembers `trace_id` as the histogram's [`Exemplar`] — so the
    /// `/metrics` tail links to the trace of its worst request. Not for
    /// wait-free hot paths: the exemplar sits behind a mutex (only
    /// contended when a new maximum lands, which is rare by definition).
    pub fn record_with_exemplar(&self, v: u64, trace_id: &str) {
        self.record(v);
        if trace_id.is_empty() {
            return;
        }
        let mut slot = self.exemplar.lock().unwrap();
        let stale = slot.as_ref().is_none_or(|e| v >= e.value);
        if stale {
            *slot = Some(Exemplar {
                value: v,
                trace_id: trace_id.to_string(),
            });
        }
    }

    /// The current exemplar, if any sample carried a trace id.
    pub fn exemplar(&self) -> Option<Exemplar> {
        self.exemplar.lock().unwrap().clone()
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket lower edge, or `None`
    /// when empty. `quantile(0.5)` is the median.
    ///
    /// # Panics
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let n = self.count();
        if n == 0 {
            return None;
        }
        // Rank of the target sample (1-based), clamped into [1, n].
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_low(i));
            }
        }
        Some(self.max.load(Ordering::Relaxed))
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Summary snapshot (count/sum/min/max/p50/p95/p99).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.quantile(0.50).unwrap_or(0),
            p95: self.quantile(0.95).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }

    /// Clears all samples (and any exemplar).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        *self.exemplar.lock().unwrap() = None;
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (bucket lower edge).
    pub p50: u64,
    /// 95th percentile (bucket lower edge).
    pub p95: u64,
    /// 99th percentile (bucket lower edge).
    pub p99: u64,
}

/// Holder of every named metric in the process.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    series: Mutex<BTreeMap<String, Arc<TimeSeries>>>,
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// The time-series sampler named `name`, created on first use with
    /// the default capacity.
    pub fn series(&self, name: &str) -> Arc<TimeSeries> {
        let mut map = self.series.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(TimeSeries::default()))
            .clone()
    }

    /// Snapshot of every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // One pass (and one lock) over the histogram map for both the
        // summaries and the exemplars.
        let (histograms, exemplars) = {
            let map = self.histograms.lock().unwrap();
            let summaries = map.iter().map(|(k, v)| (k.clone(), v.summary())).collect();
            let exemplars = map
                .iter()
                .filter_map(|(k, v)| v.exemplar().map(|e| (k.clone(), e)))
                .collect();
            (summaries, exemplars)
        };
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms,
            exemplars,
            series: self
                .series
                .lock()
                .unwrap()
                .iter()
                .filter(|(_, s)| !s.is_empty())
                .map(|(k, s)| (k.clone(), s.snapshot()))
                .collect(),
        }
    }

    /// Resets every metric to its empty state (per-run scoping; tests).
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.set(0.0);
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
    }

    /// Resets every metric *and* every time-series sampler. Call between
    /// experiments so one figure/table run's metrics don't bleed into the
    /// next run's report snapshot.
    pub fn reset_all(&self) {
        self.reset();
        for s in self.series.lock().unwrap().values() {
            s.reset();
        }
    }
}

/// Point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Histogram exemplars by name (histograms with a traced sample only).
    pub exemplars: BTreeMap<String, Exemplar>,
    /// Time-series points by name (non-empty series only).
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one: counters add, gauges take the
    /// other's value, series concatenate, and histogram summaries combine
    /// (counts and sums add; min/max widen; quantiles take the pairwise
    /// maximum, a conservative upper bound since exact merging would need
    /// the raw buckets). Used by `repro` to keep a whole-run view while
    /// experiments reset the registry between figures.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) if mine.count > 0 && h.count > 0 => {
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = mine.min.min(h.min);
                    mine.max = mine.max.max(h.max);
                    mine.p50 = mine.p50.max(h.p50);
                    mine.p95 = mine.p95.max(h.p95);
                    mine.p99 = mine.p99.max(h.p99);
                }
                Some(mine) if mine.count == 0 => *mine = *h,
                Some(_) => {}
                None => {
                    self.histograms.insert(k.clone(), *h);
                }
            }
        }
        for (k, e) in &other.exemplars {
            match self.exemplars.get(k) {
                Some(mine) if mine.value >= e.value => {}
                _ => {
                    self.exemplars.insert(k.clone(), e.clone());
                }
            }
        }
        for (k, pts) in &other.series {
            self.series
                .entry(k.clone())
                .or_default()
                .extend(pts.iter().copied());
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let mut last = 0usize;
        for shift in 0..63 {
            let v = 1u64 << shift;
            let idx = bucket_index(v);
            assert!(idx >= last, "index must not decrease: {v} -> {idx}");
            assert!(idx < NUM_BUCKETS);
            last = idx;
        }
        assert_eq!(bucket_index(0), 0);
        assert!(bucket_low(bucket_index(1000)) <= 1000);
    }

    #[test]
    fn bucket_low_is_lower_bound_of_its_bucket() {
        for v in [0u64, 1, 7, 8, 100, 1000, 123_456, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v, "low({idx}) > {v}");
        }
    }

    #[test]
    fn registry_returns_same_instance() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn reset_all_clears_metrics_and_series() {
        let r = Registry::default();
        r.counter("c").add(5);
        r.gauge("g").set(1.5);
        r.histogram("h").record(7);
        r.series("s").push(2.0);
        r.reset_all();
        let snap = r.snapshot();
        assert_eq!(snap.counters["c"], 0);
        assert_eq!(snap.gauges["g"], 0.0);
        assert_eq!(snap.histograms["h"].count, 0);
        assert!(snap.series.is_empty(), "empty series are omitted");
    }

    #[test]
    fn exemplar_tracks_high_water_mark() {
        let h = Histogram::new();
        assert_eq!(h.exemplar(), None);
        h.record_with_exemplar(100, "aaaa");
        h.record_with_exemplar(50, "bbbb");
        let e = h.exemplar().unwrap();
        assert_eq!((e.value, e.trace_id.as_str()), (100, "aaaa"));
        // Ties and new maxima replace; empty trace ids never record.
        h.record_with_exemplar(100, "cccc");
        assert_eq!(h.exemplar().unwrap().trace_id, "cccc");
        h.record_with_exemplar(500, "");
        assert_eq!(h.exemplar().unwrap().trace_id, "cccc");
        assert_eq!(h.count(), 4);
        h.reset();
        assert_eq!(h.exemplar(), None);
    }

    #[test]
    fn snapshot_and_absorb_carry_exemplars() {
        let r = Registry::default();
        r.histogram("h").record_with_exemplar(10, "t1");
        let mut acc = r.snapshot();
        assert_eq!(acc.exemplars["h"].trace_id, "t1");
        let r2 = Registry::default();
        r2.histogram("h").record_with_exemplar(20, "t2");
        acc.absorb(&r2.snapshot());
        assert_eq!(acc.exemplars["h"].trace_id, "t2");
        // Lower-valued exemplars do not displace the retained maximum.
        let r3 = Registry::default();
        r3.histogram("h").record_with_exemplar(5, "t3");
        acc.absorb(&r3.snapshot());
        assert_eq!(acc.exemplars["h"].trace_id, "t2");
    }

    #[test]
    fn absorb_adds_counters_and_concatenates_series() {
        let r = Registry::default();
        r.counter("c").add(2);
        r.series("s").push(1.0);
        let mut acc = r.snapshot();
        r.reset_all();
        r.counter("c").add(3);
        r.series("s").push(2.0);
        acc.absorb(&r.snapshot());
        assert_eq!(acc.counters["c"], 5);
        let pts = &acc.series["s"];
        assert_eq!(pts.iter().map(|p| p.1).collect::<Vec<_>>(), [1.0, 2.0]);
        assert!(pts[0].0 <= pts[1].0, "concatenation stays monotone");
    }
}
