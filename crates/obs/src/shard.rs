//! Per-cell series sharding for deterministic parallel merges.
//!
//! Counters, gauges, and histograms are commutative atomics: recording
//! them from worker threads yields the same totals regardless of
//! interleaving. Time series are the one order-sensitive metric — a
//! [`crate::TimeSeries`] decimates based on *push order*, so interleaved
//! pushes from concurrent sweep cells would change which points survive.
//!
//! The shard fixes this: a sweep worker calls [`begin_cell`] before
//! running a cell, every [`crate::SeriesHandle`] push on that thread is
//! captured into a thread-local buffer instead of the global registry,
//! and [`end_cell`] returns the buffer as a [`CellRecording`]. The sweep
//! engine then [`replay`]s recordings in cell-index order after the
//! parallel section, so the registry receives exactly the push sequence a
//! serial run would have produced.
//!
//! When no cell is active (serial execution, main thread) a handle push
//! goes straight to the registry — same order, same result.
//!
//! The hierarchical profiler ([`crate::prof`]) piggybacks on the same
//! begin/end/replay protocol: spans completing inside a cell fold into
//! the cell's [`crate::prof::Profile`] shard, and [`replay`] merges it
//! into the process-global profile. Profile merges are commutative
//! sums, so — unlike series — the replay order cannot change the
//! result; routing them through the same machinery simply keeps one
//! aggregation path for all per-cell observability.

use crate::prof::Profile;
use crate::timeseries::TimeSeries;
use std::cell::RefCell;
use std::sync::Arc;

/// One captured series sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeriesSample {
    /// `TimeSeries::push` (auto x from the monotone push counter).
    Auto(f64),
    /// `TimeSeries::push_at(x, y)`.
    At(u64, f64),
}

/// Ordered series samples captured while one sweep cell executed, plus
/// the cell's profiler shard.
#[derive(Debug, Clone, Default)]
pub struct CellRecording {
    entries: Vec<(Arc<str>, SeriesSample)>,
    prof: Profile,
}

impl CellRecording {
    /// Number of captured series samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was captured (series or profile frames).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.prof.is_empty()
    }

    /// The call-tree profile captured while the cell executed.
    pub fn profile(&self) -> &Profile {
        &self.prof
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<CellRecording>> = const { RefCell::new(None) };
}

/// Starts capturing series pushes (and profiler frames) on this thread
/// into a fresh recording.
pub fn begin_cell() {
    ACTIVE.with(|a| *a.borrow_mut() = Some(CellRecording::default()));
    crate::prof::cell_begin();
}

/// Stops capturing and returns the recording (empty if none was active).
pub fn end_cell() -> CellRecording {
    let mut rec = ACTIVE.with(|a| a.borrow_mut().take()).unwrap_or_default();
    rec.prof = crate::prof::cell_take();
    rec
}

/// True while this thread is inside `begin_cell` .. `end_cell`.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Captures one sample if a cell is active on this thread.
/// Returns `false` when inactive — the caller should push directly.
pub(crate) fn record(name: &Arc<str>, sample: SeriesSample) -> bool {
    ACTIVE.with(|a| match a.borrow_mut().as_mut() {
        Some(rec) => {
            rec.entries.push((name.clone(), sample));
            true
        }
        None => false,
    })
}

/// Replays a recording into the global registry, preserving sample
/// order, and merges the cell's profile shard into the global profile.
pub fn replay(rec: &CellRecording) {
    for (name, sample) in &rec.entries {
        let series: Arc<TimeSeries> = crate::metrics::global().series(name);
        match *sample {
            SeriesSample::Auto(y) => series.push(y),
            SeriesSample::At(x, y) => series.push_at(x, y),
        }
    }
    crate::prof::merge_global(&rec.prof);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_thread_records_nothing() {
        assert!(!is_active());
        let name: Arc<str> = Arc::from("shard.test.none");
        assert!(!record(&name, SeriesSample::Auto(1.0)));
    }

    #[test]
    fn capture_and_replay_preserve_order() {
        begin_cell();
        assert!(is_active());
        let name: Arc<str> = Arc::from("shard.test.order");
        assert!(record(&name, SeriesSample::Auto(1.0)));
        assert!(record(&name, SeriesSample::Auto(2.0)));
        assert!(record(&name, SeriesSample::At(100, 3.0)));
        let rec = end_cell();
        assert!(!is_active());
        assert_eq!(rec.len(), 3);

        crate::metrics::global().series("shard.test.order").reset();
        replay(&rec);
        let pts = crate::metrics::global()
            .series("shard.test.order")
            .snapshot();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        assert_eq!(ys, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn end_without_begin_is_empty() {
        let rec = end_cell();
        assert!(rec.is_empty());
    }
}
