//! Chrome trace-event recording for Perfetto.
//!
//! When enabled (programmatically via [`enable`] or through the
//! `PSCA_TRACE=<path.json>` environment variable), the recorder collects
//! [trace-event format] records in memory and [`finish`] writes them as a
//! JSON array loadable in [Perfetto] (`ui.perfetto.dev`) or
//! `chrome://tracing`:
//!
//! - **complete events** (`ph: "X"`) — one per [`crate::SpanTimer`],
//!   rendered as nested duration bars on a per-thread track;
//! - **instant events** (`ph: "i"`) — mode switches, guardrail trips, SLA
//!   violations, training rounds;
//! - **counter events** (`ph: "C"`) — per-interval IPC and similar
//!   numeric tracks.
//!
//! Disabled cost is one relaxed atomic load per call site. Each thread
//! gets its own `tid` plus a `thread_name` metadata record, so spans from
//! worker threads land on separate tracks. The buffer is bounded at
//! [`MAX_EVENTS`]; overflow drops further events and reports the count in
//! a final metadata record rather than exhausting memory.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::event::FieldValue;
use crate::json::Json;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered trace events (~a few hundred MB worst case).
pub const MAX_EVENTS: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

struct State {
    path: PathBuf,
    start: Instant,
    events: Vec<Json>,
    dropped: u64,
}

fn state() -> &'static Mutex<Option<State>> {
    static STATE: OnceLock<Mutex<Option<State>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Whether trace recording is active (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts recording to `path`. Returns `false` if recording was already
/// active (the original destination wins).
pub fn enable(path: impl AsRef<Path>) -> bool {
    let mut guard = state().lock().unwrap();
    if guard.is_some() {
        return false;
    }
    *guard = Some(State {
        path: path.as_ref().to_path_buf(),
        start: Instant::now(),
        events: Vec::new(),
        dropped: 0,
    });
    ENABLED.store(true, Ordering::Relaxed);
    true
}

/// Enables recording when `PSCA_TRACE=<path>` is set; returns whether
/// recording is now active because of it.
pub fn enable_from_env() -> bool {
    match std::env::var("PSCA_TRACE") {
        Ok(path) if !path.trim().is_empty() => enable(path.trim()),
        _ => false,
    }
}

/// Microseconds since recording started (0 when disabled).
pub fn now_us() -> u64 {
    let guard = state().lock().unwrap();
    guard
        .as_ref()
        .map(|s| s.start.elapsed().as_micros() as u64)
        .unwrap_or(0)
}

/// The calling thread's track id, assigning one (plus a `thread_name`
/// metadata record) on first use.
fn tid(st: &mut State) -> u64 {
    TID.with(|cell| {
        let mut t = cell.get();
        if t == 0 {
            t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(t);
            let name = std::thread::current()
                .name()
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!("thread-{t}"));
            st.events.push(Json::obj(vec![
                ("name", Json::Str("thread_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", Json::UInt(1)),
                ("tid", Json::UInt(t)),
                ("args", Json::obj(vec![("name", Json::Str(name))])),
            ]));
        }
        t
    })
}

fn push_event(build: impl FnOnce(&mut State, u64) -> Json) {
    let mut guard = state().lock().unwrap();
    let Some(st) = guard.as_mut() else {
        return;
    };
    if st.events.len() >= MAX_EVENTS {
        st.dropped += 1;
        return;
    }
    let t = tid(st);
    let ev = build(st, t);
    st.events.push(ev);
}

fn fields_to_args(fields: &[(&str, FieldValue)]) -> Json {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| {
                let j = match v {
                    FieldValue::U64(x) => Json::UInt(*x),
                    FieldValue::I64(x) => Json::Int(*x),
                    FieldValue::F64(x) => Json::Num(*x),
                    FieldValue::Str(x) => Json::Str(x.clone()),
                    FieldValue::Bool(x) => Json::Bool(*x),
                };
                (k.to_string(), j)
            })
            .collect(),
    )
}

/// The calling thread's request context, rendered as trace-event args
/// (`None` when no [`crate::ctx::TraceCtx`] is attached).
fn ctx_args() -> Option<Json> {
    crate::ctx::current().map(|c| {
        Json::obj(vec![
            ("trace_id", Json::Str(c.trace_id_hex())),
            ("span_id", Json::Str(c.span_id_hex())),
        ])
    })
}

/// Records a complete (duration) event: a span named `name` that started
/// `ts_us` microseconds into the trace and lasted `dur_us`. When the
/// calling thread has a request context attached, the span's args carry
/// its `trace_id`/`span_id`, so Perfetto queries can slice one request
/// out of the whole recording.
pub fn complete(name: &str, ts_us: u64, dur_us: u64) {
    if !enabled() {
        return;
    }
    let ctx = ctx_args();
    push_event(move |_, tid| {
        let mut fields = vec![
            ("name", Json::Str(name.to_string())),
            ("cat", Json::Str("span".into())),
            ("ph", Json::Str("X".into())),
            ("ts", Json::UInt(ts_us)),
            ("dur", Json::UInt(dur_us.max(1))),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(tid)),
        ];
        if let Some(args) = ctx {
            fields.push(("args", args));
        }
        Json::obj(fields)
    });
}

/// Records a thread-scoped instant event (a mode switch, a guardrail
/// trip, an SLA violation) with typed argument fields. A request context
/// attached to the calling thread adds `trace_id`/`span_id` args.
pub fn instant(name: &str, fields: &[(&str, FieldValue)]) {
    if !enabled() {
        return;
    }
    let mut args = fields_to_args(fields);
    if let (Some(Json::Obj(extra)), Json::Obj(pairs)) = (ctx_args(), &mut args) {
        pairs.extend(extra);
    }
    push_event(move |st, tid| {
        Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("cat", Json::Str("event".into())),
            ("ph", Json::Str("i".into())),
            ("s", Json::Str("t".into())),
            ("ts", Json::UInt(st.start.elapsed().as_micros() as u64)),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(tid)),
            ("args", args),
        ])
    });
}

/// Records a counter sample: Perfetto renders these as a numeric track
/// named `name`.
pub fn counter_event(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    push_event(|st, tid| {
        Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("cat", Json::Str("metric".into())),
            ("ph", Json::Str("C".into())),
            ("ts", Json::UInt(st.start.elapsed().as_micros() as u64)),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(tid)),
            ("args", Json::obj(vec![("value", Json::Num(value))])),
        ])
    });
}

/// Number of buffered events (tests, diagnostics).
pub fn event_count() -> usize {
    state()
        .lock()
        .unwrap()
        .as_ref()
        .map(|s| s.events.len())
        .unwrap_or(0)
}

/// Stops recording and writes the JSON array to the configured path,
/// returning it. `None` when recording was never enabled. On a write
/// failure the error is reported on stderr and `None` is returned.
pub fn finish() -> Option<PathBuf> {
    let mut guard = state().lock().unwrap();
    let mut st = guard.take()?;
    ENABLED.store(false, Ordering::Relaxed);
    if st.dropped > 0 {
        st.events.push(Json::obj(vec![
            ("name", Json::Str("psca_trace_dropped_events".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(0)),
            ("args", Json::obj(vec![("dropped", Json::UInt(st.dropped))])),
        ]));
    }
    if let Some(dir) = st.path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let body = Json::Arr(std::mem::take(&mut st.events)).to_string();
    match std::fs::write(&st.path, body) {
        Ok(()) => Some(st.path),
        Err(e) => {
            eprintln!("psca-obs: cannot write trace {}: {e}", st.path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        // Must not be enabled by other tests: this file's tests are the
        // only in-crate users of the global recorder state.
        if enabled() {
            return;
        }
        complete("x", 0, 10);
        instant("y", &[]);
        assert_eq!(event_count(), 0);
        assert_eq!(finish(), None);
    }

    #[test]
    fn args_carry_typed_fields() {
        let j = fields_to_args(&[("n", FieldValue::U64(3)), ("ok", FieldValue::Bool(true))]);
        assert_eq!(j.to_string(), r#"{"n":3,"ok":true}"#);
    }
}
