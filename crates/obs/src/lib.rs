//! `psca-obs`: observability for the post-silicon adaptation pipeline.
//!
//! Six layers, all dependency-free:
//!
//! 1. **Metrics** ([`metrics`]) — atomic [`Counter`]s, [`Gauge`]s, and
//!    log-linear [`Histogram`]s behind a process-global [`Registry`].
//!    Recording is wait-free; with no consumer the cost is one atomic op.
//! 2. **Events** ([`event`]) — discrete structured events (mode switches,
//!    guardrail trips, SLA violations, training rounds) delivered to
//!    installed sinks, level-filtered via the `PSCA_LOG` environment
//!    variable. With no sink installed, [`emit`] is two relaxed atomic
//!    loads.
//! 3. **Time-series** ([`timeseries`]) — fixed-capacity, auto-downsampling
//!    [`TimeSeries`] samplers on the registry for per-window signals (IPC,
//!    low-power residency, predictor accuracy), surfaced in reports and
//!    CSV artifacts.
//! 4. **Traces** ([`trace`]) — Chrome trace-event recording, opt-in via
//!    `PSCA_TRACE=<path.json>`, loadable in Perfetto; spans, instants, and
//!    counter tracks.
//! 5. **Exporter** ([`exporter`]) — a std-only HTTP server (opt-in via
//!    `PSCA_METRICS_ADDR=<host:port>`) exposing `/metrics` (Prometheus
//!    text format), `/healthz`, and `/report`.
//! 6. **Reports** ([`report`]) — a [`RunReport`] aggregates per-phase
//!    wall time, headline summary values, and a metrics snapshot into
//!    `target/obs/<run>.json` plus a rendered table.
//!
//! [`SpanTimer`] ([`span`]) bridges metrics, events, and traces: an RAII
//! timer that records wall time into `span.<path>` histograms, emits
//! trace-level enter/exit events, and (when tracing) a Perfetto duration
//! bar. The hierarchical self-profiler ([`prof`], opt-in via
//! `PSCA_PROF=1`) rides the same spans: per-thread call trees with call
//! counts and self-vs-total wall time, merged across sweep workers and
//! rendered as collapsed-stack (flamegraph) text plus a self-time table
//! (`docs/PROFILING.md`).
//!
//! On top of these sit three request-scoped facilities:
//!
//! - **Trace context** ([`ctx`]) — a W3C-traceparent-compatible
//!   [`TraceCtx`] attached per thread; Perfetto spans and instants carry
//!   its ids as args, and histogram exemplars link `/metrics` tails back
//!   to traces.
//! - **SLOs** ([`slo`]) — declarative [`SloSpec`] targets evaluated over
//!   sliding windows with multi-window burn-rate alerts.
//! - **Flight recorder** ([`recorder`]) — a bounded ring of recent
//!   request records dumped as JSONL postmortems on failure.
//!
//! Naming conventions and the `PSCA_LOG` / `PSCA_TRACE` /
//! `PSCA_METRICS_ADDR` contracts are documented in `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]

pub mod ctx;
pub mod event;
pub mod exporter;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod recorder;
pub mod report;
pub mod shard;
pub mod slo;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use ctx::TraceCtx;
pub use event::{
    clear_sinks, emit, enabled, flush, install_sink, set_level, ConsoleSink, EventRecord,
    EventSink, FieldValue, JsonlSink, Level,
};
pub use exporter::MetricsServer;
pub use json::Json;
pub use metrics::{
    Counter, Exemplar, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry,
};
pub use prof::{NodeStat, Profile};
pub use recorder::{FlightRecorder, RequestRecord};
pub use report::{PhaseStat, RunReport, SummaryValue};
pub use slo::{SloEngine, SloSpec, SloStatus};
pub use span::SpanTimer;
pub use timeseries::TimeSeries;

use std::sync::Arc;

/// The global counter named `name` (created on first use).
pub fn counter(name: &str) -> Arc<Counter> {
    metrics::global().counter(name)
}

/// The global gauge named `name` (created on first use).
pub fn gauge(name: &str) -> Arc<Gauge> {
    metrics::global().gauge(name)
}

/// The global histogram named `name` (created on first use).
pub fn histogram(name: &str) -> Arc<Histogram> {
    metrics::global().histogram(name)
}

/// The global time-series sampler named `name` (created on first use).
pub fn series(name: &str) -> Arc<TimeSeries> {
    metrics::global().series(name)
}

/// A pre-resolved, shard-aware handle to a named time series.
///
/// Resolve once (at simulator/controller construction) and push per
/// window: no registry lock on the hot path. When the calling thread is
/// inside a sweep cell ([`shard::begin_cell`]), pushes are captured into
/// the cell's recording for deterministic in-order replay instead of
/// hitting the order-sensitive global series directly.
#[derive(Debug, Clone)]
pub struct SeriesHandle {
    name: Arc<str>,
    inner: Arc<TimeSeries>,
}

impl SeriesHandle {
    /// The series name this handle resolves to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends `y` (auto x), routing through the active cell shard if any.
    #[inline]
    pub fn push(&self, y: f64) {
        if !shard::record(&self.name, shard::SeriesSample::Auto(y)) {
            self.inner.push(y);
        }
    }

    /// Appends `(x, y)`, routing through the active cell shard if any.
    #[inline]
    pub fn push_at(&self, x: u64, y: f64) {
        if !shard::record(&self.name, shard::SeriesSample::At(x, y)) {
            self.inner.push_at(x, y);
        }
    }
}

/// Resolves a shard-aware [`SeriesHandle`] for the global series `name`.
pub fn series_handle(name: &str) -> SeriesHandle {
    SeriesHandle {
        name: Arc::from(name),
        inner: metrics::global().series(name),
    }
}

/// Snapshot of every global metric.
pub fn snapshot() -> MetricsSnapshot {
    metrics::global().snapshot()
}

/// Resets every global metric (per-run scoping; tests).
pub fn reset_metrics() {
    metrics::global().reset();
}

/// Resets every global metric *and* time-series (per-experiment scoping).
pub fn reset_all() {
    metrics::global().reset_all();
}

/// Standard sink bootstrap for binaries:
///
/// - `PSCA_LOG=<level>` installs a [`ConsoleSink`] on stderr filtered at
///   that level (no variable → no sink, near-zero cost);
/// - `PSCA_OBS_JSONL=<path>` additionally streams every delivered event
///   to a JSONL file;
/// - `PSCA_TRACE=<path.json>` starts the Chrome trace-event recorder
///   ([`trace`]);
/// - `PSCA_METRICS_ADDR=<host:port>` starts the live HTTP metrics
///   exporter ([`exporter`]);
/// - `PSCA_PROF=1` enables the hierarchical self-profiler ([`prof`]).
///
/// Returns `true` if any sink was installed.
pub fn init_from_env() -> bool {
    let mut installed = false;
    if std::env::var("PSCA_LOG")
        .map(|v| Level::from_env_str(&v).is_some())
        .unwrap_or(false)
    {
        install_sink(Box::new(ConsoleSink));
        installed = true;
    }
    if let Ok(path) = std::env::var("PSCA_OBS_JSONL") {
        match JsonlSink::create(std::path::Path::new(&path)) {
            Ok(sink) => {
                install_sink(Box::new(sink));
                installed = true;
            }
            Err(e) => eprintln!("psca-obs: cannot open PSCA_OBS_JSONL={path}: {e}"),
        }
    }
    trace::enable_from_env();
    exporter::serve_from_env();
    prof::init_from_env();
    installed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convenience_handles_hit_the_global_registry() {
        let c = counter("lib_convenience_counter");
        c.add(7);
        assert_eq!(snapshot().counters.get("lib_convenience_counter"), Some(&7));
    }
}
