//! Declarative service-level objectives with burn-rate alerting.
//!
//! An [`SloSpec`] is parsed from the same comma-separated `key=value`
//! grammar as `ChaosSpec` (`p99_us=250000,availability=0.999`) and names
//! the targets a serving deployment promises: tail latency, availability,
//! and a reservation-style floor (`rsv_floor`) on the closed loop's
//! low-power residency. An [`SloEngine`] folds per-request observations
//! into per-second sliding windows and evaluates the spec two ways:
//!
//! - **point-in-time** — windowed p99 and availability against target
//!   ([`SloEngine::status`]);
//! - **burn rate** — error-budget consumption over a fast and a slow
//!   window (the multi-window alerting policy from the SRE workbook): a
//!   burn rate of 1.0 spends the availability budget exactly at the rate
//!   the window allows, 14.0 spends it 14× faster. The fast window
//!   catches sharp outages, the slow window catches smouldering ones.
//!
//! All evaluation takes explicit millisecond timestamps so tests drive
//! time deterministically; the serve daemon passes wall-clock time since
//! its own start epoch.

use crate::json::Json;

/// Default p99 target: generous enough for CI machines (250 ms).
const DEFAULT_P99_US: u64 = 250_000;
/// Default availability target (three nines).
const DEFAULT_AVAILABILITY: f64 = 0.999;
/// Default short evaluation window (seconds).
const DEFAULT_WINDOW_S: u64 = 60;
/// Default long burn-rate window (seconds).
const DEFAULT_LONG_WINDOW_S: u64 = 600;
/// Default fast-window burn-rate alert threshold.
const DEFAULT_FAST_BURN: f64 = 14.0;
/// Default slow-window burn-rate alert threshold.
const DEFAULT_SLOW_BURN: f64 = 2.0;

/// Maximum raw latency samples retained for windowed quantiles.
const MAX_LATENCY_SAMPLES: usize = 8192;

/// A parsed service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// p99 latency target in microseconds.
    pub p99_latency_us: u64,
    /// Availability target in `(0, 1)` — fraction of non-5xx responses.
    pub availability: f64,
    /// Optional floor on closed-loop low-power residency (RSV), in
    /// `[0, 1]`; checked offline by `repro slo-check`.
    pub rsv_floor: Option<f64>,
    /// Short sliding window, seconds (p99 + fast burn rate).
    pub window_s: u64,
    /// Long sliding window, seconds (slow burn rate).
    pub long_window_s: u64,
    /// Fast-window burn-rate alert threshold.
    pub fast_burn: f64,
    /// Slow-window burn-rate alert threshold.
    pub slow_burn: f64,
}

impl Default for SloSpec {
    fn default() -> SloSpec {
        SloSpec {
            p99_latency_us: DEFAULT_P99_US,
            availability: DEFAULT_AVAILABILITY,
            rsv_floor: None,
            window_s: DEFAULT_WINDOW_S,
            long_window_s: DEFAULT_LONG_WINDOW_S,
            fast_burn: DEFAULT_FAST_BURN,
            slow_burn: DEFAULT_SLOW_BURN,
        }
    }
}

impl SloSpec {
    /// Parses the `key=value[,key=value...]` grammar.
    ///
    /// Keys: `p99_us`, `availability`, `rsv_floor`, `window_s`,
    /// `long_window_s`, `fast_burn`, `slow_burn`. The specials `""` and
    /// `default` yield the default spec; `off` yields `None`.
    pub fn parse(spec: &str) -> Result<Option<SloSpec>, String> {
        let trimmed = spec.trim();
        if trimmed.eq_ignore_ascii_case("off") {
            return Ok(None);
        }
        let mut out = SloSpec::default();
        if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("default") {
            return Ok(Some(out));
        }
        for entry in trimmed.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("slo entry '{entry}' is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "p99_us" => {
                    out.p99_latency_us = value
                        .parse::<u64>()
                        .map_err(|_| format!("slo p99_us '{value}' is not an integer"))?;
                    if out.p99_latency_us == 0 {
                        return Err("slo p99_us must be positive".to_string());
                    }
                }
                "availability" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("slo availability '{value}' is not a number"))?;
                    if !(v > 0.0 && v < 1.0) {
                        return Err(format!("slo availability {v} must be in (0, 1)"));
                    }
                    out.availability = v;
                }
                "rsv_floor" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("slo rsv_floor '{value}' is not a number"))?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("slo rsv_floor {v} must be in [0, 1]"));
                    }
                    out.rsv_floor = Some(v);
                }
                "window_s" => {
                    out.window_s = value
                        .parse::<u64>()
                        .map_err(|_| format!("slo window_s '{value}' is not an integer"))?;
                    if out.window_s == 0 {
                        return Err("slo window_s must be positive".to_string());
                    }
                }
                "long_window_s" => {
                    out.long_window_s = value
                        .parse::<u64>()
                        .map_err(|_| format!("slo long_window_s '{value}' is not an integer"))?;
                    if out.long_window_s == 0 {
                        return Err("slo long_window_s must be positive".to_string());
                    }
                }
                "fast_burn" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("slo fast_burn '{value}' is not a number"))?;
                    if v <= 0.0 {
                        return Err("slo fast_burn must be positive".to_string());
                    }
                    out.fast_burn = v;
                }
                "slow_burn" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("slo slow_burn '{value}' is not a number"))?;
                    if v <= 0.0 {
                        return Err("slo slow_burn must be positive".to_string());
                    }
                    out.slow_burn = v;
                }
                other => return Err(format!("unknown slo key '{other}'")),
            }
        }
        if out.long_window_s < out.window_s {
            return Err(format!(
                "slo long_window_s {} must be >= window_s {}",
                out.long_window_s, out.window_s
            ));
        }
        Ok(Some(out))
    }

    /// The fraction of requests allowed to fail (`1 - availability`).
    pub fn error_budget(&self) -> f64 {
        1.0 - self.availability
    }

    /// Offline verdict over aggregate values (as recorded in a
    /// `BENCH_serve.json`): returns one human-readable violation string
    /// per broken objective, empty when the spec holds.
    pub fn check_values(
        &self,
        p99_us: Option<f64>,
        availability: Option<f64>,
        rsv: Option<f64>,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(p99) = p99_us {
            if p99 > self.p99_latency_us as f64 {
                violations.push(format!(
                    "p99 latency {:.0}us exceeds target {}us",
                    p99, self.p99_latency_us
                ));
            }
        }
        if let Some(av) = availability {
            if av < self.availability {
                violations.push(format!(
                    "availability {:.6} below target {:.6}",
                    av, self.availability
                ));
            }
        }
        if let (Some(floor), Some(rsv)) = (self.rsv_floor, rsv) {
            if rsv < floor {
                violations.push(format!(
                    "low-power residency {rsv:.4} below rsv_floor {floor:.4}"
                ));
            }
        }
        violations
    }

    /// Canonical `key=value` rendering (parses back to `self`).
    pub fn render(&self) -> String {
        let mut s = format!(
            "p99_us={},availability={},window_s={},long_window_s={},fast_burn={},slow_burn={}",
            self.p99_latency_us,
            self.availability,
            self.window_s,
            self.long_window_s,
            self.fast_burn,
            self.slow_burn
        );
        if let Some(floor) = self.rsv_floor {
            s.push_str(&format!(",rsv_floor={floor}"));
        }
        s
    }

    /// JSON rendering of the spec itself.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("p99_us", self.p99_latency_us.into()),
            ("availability", self.availability.into()),
            ("window_s", self.window_s.into()),
            ("long_window_s", self.long_window_s.into()),
            ("fast_burn", self.fast_burn.into()),
            ("slow_burn", self.slow_burn.into()),
        ];
        if let Some(floor) = self.rsv_floor {
            fields.push(("rsv_floor", floor.into()));
        }
        Json::obj(fields)
    }
}

/// One second's worth of request outcomes.
#[derive(Debug, Clone, Copy, Default)]
struct SecondBucket {
    /// Absolute second this bucket covers (ms timestamp / 1000).
    second: u64,
    requests: u64,
    errors: u64,
}

/// Point-in-time evaluation of an [`SloSpec`] over its sliding windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Requests observed in the short window.
    pub window_requests: u64,
    /// Errors (5xx) observed in the short window.
    pub window_errors: u64,
    /// Windowed p99 latency in microseconds (`None` until samples exist).
    pub p99_us: Option<f64>,
    /// Windowed availability (`None` until requests exist).
    pub availability: Option<f64>,
    /// Error-budget burn rate over the short window.
    pub fast_burn_rate: f64,
    /// Error-budget burn rate over the long window.
    pub slow_burn_rate: f64,
    /// Human-readable active alerts (empty when healthy).
    pub alerts: Vec<String>,
}

impl SloStatus {
    /// True when no objective is currently violated.
    pub fn ok(&self) -> bool {
        self.alerts.is_empty()
    }
}

/// Sliding-window evaluator: feed it one observation per request via
/// [`SloEngine::observe`], read the verdict with [`SloEngine::status`].
#[derive(Debug)]
pub struct SloEngine {
    spec: SloSpec,
    /// Per-second outcome ring, `long_window_s` seconds deep.
    buckets: Vec<SecondBucket>,
    /// Recent (ts_ms, latency_us) samples for windowed quantiles.
    latencies: Vec<(u64, u64)>,
    latency_head: usize,
}

impl SloEngine {
    /// A fresh engine evaluating `spec`.
    pub fn new(spec: SloSpec) -> SloEngine {
        let depth = spec.long_window_s as usize;
        SloEngine {
            spec,
            buckets: vec![SecondBucket::default(); depth.max(1)],
            latencies: Vec::new(),
            latency_head: 0,
        }
    }

    /// The spec under evaluation.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Records one finished request. `now_ms` is milliseconds since an
    /// arbitrary fixed epoch (monotonic per engine); `error` means the
    /// response was a 5xx.
    pub fn observe(&mut self, now_ms: u64, latency_us: u64, error: bool) {
        let second = now_ms / 1000;
        let idx = (second as usize) % self.buckets.len();
        let bucket = &mut self.buckets[idx];
        if bucket.second != second {
            // The ring lapped: this slot belonged to an expired second.
            *bucket = SecondBucket {
                second,
                requests: 0,
                errors: 0,
            };
        }
        bucket.requests += 1;
        if error {
            bucket.errors += 1;
        }
        if self.latencies.len() < MAX_LATENCY_SAMPLES {
            self.latencies.push((now_ms, latency_us));
        } else {
            self.latencies[self.latency_head] = (now_ms, latency_us);
            self.latency_head = (self.latency_head + 1) % MAX_LATENCY_SAMPLES;
        }
    }

    /// Requests/errors observed within the trailing `window_s` seconds.
    fn window_counts(&self, now_ms: u64, window_s: u64) -> (u64, u64) {
        let now_second = now_ms / 1000;
        let oldest = now_second.saturating_sub(window_s.saturating_sub(1));
        let mut requests = 0;
        let mut errors = 0;
        for b in &self.buckets {
            if b.requests > 0 && b.second >= oldest && b.second <= now_second {
                requests += b.requests;
                errors += b.errors;
            }
        }
        (requests, errors)
    }

    /// Error-budget burn rate over a trailing window: observed error
    /// fraction divided by the budgeted fraction. 0.0 when idle.
    fn burn_rate(&self, now_ms: u64, window_s: u64) -> f64 {
        let (requests, errors) = self.window_counts(now_ms, window_s);
        if requests == 0 {
            return 0.0;
        }
        let budget = self.spec.error_budget();
        if budget <= 0.0 {
            return if errors > 0 { f64::INFINITY } else { 0.0 };
        }
        (errors as f64 / requests as f64) / budget
    }

    /// Windowed p99 over retained latency samples.
    fn window_p99(&self, now_ms: u64) -> Option<f64> {
        let cutoff = now_ms.saturating_sub(self.spec.window_s * 1000);
        let mut samples: Vec<u64> = self
            .latencies
            .iter()
            .filter(|(ts, _)| *ts >= cutoff && *ts <= now_ms)
            .map(|(_, lat)| *lat)
            .collect();
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let rank = ((samples.len() as f64) * 0.99).ceil() as usize;
        Some(samples[rank.saturating_sub(1).min(samples.len() - 1)] as f64)
    }

    /// Evaluates the spec at `now_ms`.
    pub fn status(&self, now_ms: u64) -> SloStatus {
        let (window_requests, window_errors) = self.window_counts(now_ms, self.spec.window_s);
        let p99_us = self.window_p99(now_ms);
        let availability = if window_requests > 0 {
            Some(1.0 - window_errors as f64 / window_requests as f64)
        } else {
            None
        };
        let fast_burn_rate = self.burn_rate(now_ms, self.spec.window_s);
        let slow_burn_rate = self.burn_rate(now_ms, self.spec.long_window_s);

        let mut alerts = Vec::new();
        if let Some(p99) = p99_us {
            if p99 > self.spec.p99_latency_us as f64 {
                alerts.push(format!(
                    "p99 latency {:.0}us exceeds target {}us over {}s window",
                    p99, self.spec.p99_latency_us, self.spec.window_s
                ));
            }
        }
        if fast_burn_rate >= self.spec.fast_burn {
            alerts.push(format!(
                "fast burn rate {:.2} >= {:.2} over {}s window",
                fast_burn_rate, self.spec.fast_burn, self.spec.window_s
            ));
        }
        if slow_burn_rate >= self.spec.slow_burn {
            alerts.push(format!(
                "slow burn rate {:.2} >= {:.2} over {}s window",
                slow_burn_rate, self.spec.slow_burn, self.spec.long_window_s
            ));
        }

        SloStatus {
            window_requests,
            window_errors,
            p99_us,
            availability,
            fast_burn_rate,
            slow_burn_rate,
            alerts,
        }
    }

    /// The `GET /v1/slo` document: spec + current status.
    pub fn to_json(&self, now_ms: u64) -> Json {
        let status = self.status(now_ms);
        Json::obj(vec![
            ("spec", self.spec.to_json()),
            ("ok", status.ok().into()),
            ("window_requests", status.window_requests.into()),
            ("window_errors", status.window_errors.into()),
            ("p99_us", status.p99_us.map_or(Json::Null, Json::from)),
            (
                "availability",
                status.availability.map_or(Json::Null, Json::from),
            ),
            ("fast_burn_rate", status.fast_burn_rate.into()),
            ("slow_burn_rate", status.slow_burn_rate.into()),
            (
                "alerts",
                Json::Arr(status.alerts.iter().map(|a| a.as_str().into()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_specials() {
        let spec = SloSpec::parse("").unwrap().unwrap();
        assert_eq!(spec, SloSpec::default());
        let spec = SloSpec::parse("default").unwrap().unwrap();
        assert_eq!(spec, SloSpec::default());
        assert_eq!(SloSpec::parse("off").unwrap(), None);
    }

    #[test]
    fn parse_full_grammar() {
        let spec = SloSpec::parse(
            "p99_us=50000, availability=0.99, rsv_floor=0.5, window_s=10, \
             long_window_s=100, fast_burn=10, slow_burn=1.5",
        )
        .unwrap()
        .unwrap();
        assert_eq!(spec.p99_latency_us, 50_000);
        assert_eq!(spec.availability, 0.99);
        assert_eq!(spec.rsv_floor, Some(0.5));
        assert_eq!(spec.window_s, 10);
        assert_eq!(spec.long_window_s, 100);
        assert_eq!(spec.fast_burn, 10.0);
        assert_eq!(spec.slow_burn, 1.5);
        // Canonical render parses back to the same spec.
        let reparsed = SloSpec::parse(&spec.render()).unwrap().unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn parse_rejects_bad_entries() {
        assert!(SloSpec::parse("nonsense").is_err());
        assert!(SloSpec::parse("p99_us=abc").is_err());
        assert!(SloSpec::parse("p99_us=0").is_err());
        assert!(SloSpec::parse("availability=1.5").is_err());
        assert!(SloSpec::parse("availability=0").is_err());
        assert!(SloSpec::parse("rsv_floor=2").is_err());
        assert!(SloSpec::parse("unknown_key=1").is_err());
        assert!(SloSpec::parse("window_s=60,long_window_s=10").is_err());
    }

    #[test]
    fn burn_rates_track_error_fraction() {
        let spec = SloSpec::parse("availability=0.99,window_s=10,long_window_s=100")
            .unwrap()
            .unwrap();
        let mut engine = SloEngine::new(spec);
        // 100 requests in one second, 10 errors: error fraction 0.1,
        // budget 0.01 → burn rate 10 on both windows.
        for i in 0..100 {
            engine.observe(5_000, 1_000, i < 10);
        }
        let status = engine.status(5_000);
        assert_eq!(status.window_requests, 100);
        assert_eq!(status.window_errors, 10);
        assert!((status.fast_burn_rate - 10.0).abs() < 1e-9);
        assert!((status.slow_burn_rate - 10.0).abs() < 1e-9);
        assert!(!status.ok());
        // 20 seconds later the fast window is clean but the slow window
        // still remembers.
        let status = engine.status(25_000);
        assert_eq!(status.window_requests, 0);
        assert_eq!(status.fast_burn_rate, 0.0);
        assert!((status.slow_burn_rate - 10.0).abs() < 1e-9);
        // Past the long window everything expires. The ring only lapses
        // buckets on write, so sweep a heartbeat past expiry first.
        engine.observe(200_000, 1_000, false);
        let status = engine.status(200_000);
        assert_eq!(status.slow_burn_rate, 0.0);
        assert!(status.ok());
    }

    #[test]
    fn p99_windowed_and_alerting() {
        let spec = SloSpec::parse("p99_us=10000,window_s=10,long_window_s=100")
            .unwrap()
            .unwrap();
        let mut engine = SloEngine::new(spec);
        // 98 fast + 2 slow samples: the ceil-rank p99 of 100 samples is
        // the 99th sorted one, i.e. the slower tail.
        for _ in 0..98 {
            engine.observe(1_000, 1_000, false);
        }
        engine.observe(1_000, 50_000, false);
        engine.observe(1_000, 50_000, false);
        let status = engine.status(1_000);
        assert!(status.p99_us.unwrap() >= 10_000.0);
        assert!(!status.ok());
        // Slow samples age out of the window.
        let status = engine.status(20_000);
        assert_eq!(status.p99_us, None);
    }

    #[test]
    fn check_values_verdicts() {
        let spec = SloSpec::parse("p99_us=10000,availability=0.99,rsv_floor=0.5")
            .unwrap()
            .unwrap();
        assert!(spec
            .check_values(Some(5_000.0), Some(0.995), Some(0.6))
            .is_empty());
        let violations = spec.check_values(Some(20_000.0), Some(0.95), Some(0.1));
        assert_eq!(violations.len(), 3);
        // Missing values are not violations.
        assert!(spec.check_values(None, None, None).is_empty());
    }

    #[test]
    fn json_document_shape() {
        let mut engine = SloEngine::new(SloSpec::default());
        engine.observe(1_000, 500, false);
        let doc = engine.to_json(1_000);
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("window_requests").and_then(Json::as_u64), Some(1));
        assert!(doc.get("spec").is_some());
    }
}
