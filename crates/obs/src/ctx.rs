//! Request-scoped trace context.
//!
//! A [`TraceCtx`] names one logical request end-to-end: a 128-bit trace
//! id shared by everything the request touches plus a 64-bit span id for
//! the current hop. The daemon mints one at ingress (or adopts the trace
//! id from an inbound W3C `traceparent` header), attaches it to the
//! handling thread with [`attach`], and every [`crate::SpanTimer`] /
//! Perfetto record emitted while the guard lives carries the ids as
//! arguments — so one request renders as a single tree in the trace UI
//! and its trace id can be joined against the access log, the latency
//! histogram exemplar, and the flight recorder.
//!
//! Ids come from a process-global SplitMix64 stream so tests can pin the
//! sequence with [`seed_ids`] and assert exact ids. Context is carried in
//! a thread-local; `psca-exec` forwards the submitting thread's context
//! into its pool workers so fan-out stays inside the same trace.
//!
//! The contract shared by every consumer: context is *observability
//! only*. Attaching, minting, or propagating a context never changes any
//! computed result — bit-identity with tracing off is enforced by test.

use std::cell::Cell;
use std::sync::Mutex;

/// One request's identity: trace id (whole request tree) + span id (this
/// hop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// 128-bit id shared by every span of the request.
    pub trace_id: u128,
    /// 64-bit id of the current hop.
    pub span_id: u64,
}

/// SplitMix64 step (same generator family the fault injector uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Default id-stream seed: fixed, so a fresh process mints a
/// deterministic id sequence (tests can still re-pin with [`seed_ids`]).
const DEFAULT_ID_SEED: u64 = 0x5CA1_AB1E_0B5E_11E5;

static ID_STATE: Mutex<u64> = Mutex::new(DEFAULT_ID_SEED);

/// Re-seeds the process-global id stream (tests; deterministic replay).
pub fn seed_ids(seed: u64) {
    *ID_STATE.lock().unwrap() = seed;
}

fn next_nonzero() -> u64 {
    let mut state = ID_STATE.lock().unwrap();
    loop {
        let v = splitmix64(&mut state);
        if v != 0 {
            return v;
        }
    }
}

impl TraceCtx {
    /// Mints a fresh context (new trace id, new span id) from the global
    /// id stream.
    pub fn mint() -> TraceCtx {
        let hi = next_nonzero() as u128;
        let lo = next_nonzero() as u128;
        TraceCtx {
            trace_id: (hi << 64) | lo,
            span_id: next_nonzero(),
        }
    }

    /// A child context: same trace id, fresh span id.
    pub fn child(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id: next_nonzero(),
        }
    }

    /// The 32-hex-digit trace id, as used in `traceparent`, exemplars,
    /// the access log, and the flight recorder.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// The 16-hex-digit span id.
    pub fn span_id_hex(&self) -> String {
        format!("{:016x}", self.span_id)
    }

    /// Renders the W3C `traceparent` header value
    /// (`00-<trace id>-<span id>-01`).
    pub fn to_traceparent(&self) -> String {
        format!("00-{:032x}-{:016x}-01", self.trace_id, self.span_id)
    }

    /// Parses a W3C `traceparent` header value. Returns `None` for
    /// malformed values, the forbidden `ff` version, or all-zero ids
    /// (invalid per the spec).
    pub fn parse_traceparent(value: &str) -> Option<TraceCtx> {
        let mut parts = value.trim().split('-');
        let version = parts.next()?;
        let trace = parts.next()?;
        let span = parts.next()?;
        let _flags = parts.next()?;
        if version.len() != 2 || version.eq_ignore_ascii_case("ff") {
            return None;
        }
        u8::from_str_radix(version, 16).ok()?;
        if trace.len() != 32 || span.len() != 16 {
            return None;
        }
        let trace_id = u128::from_str_radix(trace, 16).ok()?;
        let span_id = u64::from_str_radix(span, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceCtx { trace_id, span_id })
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The calling thread's active context, if any.
#[inline]
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(Cell::get)
}

/// Attaches `ctx` to the calling thread for the guard's lifetime; the
/// previous context (if any) is restored on drop, so attachment nests.
pub fn attach(ctx: TraceCtx) -> CtxGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    CtxGuard { prev }
}

/// RAII restorer for [`attach`].
#[derive(Debug)]
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceCtx {
            trace_id: 0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF,
            span_id: 0xFEDC_BA98_7654_3210,
        };
        let header = ctx.to_traceparent();
        assert_eq!(
            header,
            "00-0123456789abcdef0123456789abcdef-fedcba9876543210-01"
        );
        assert_eq!(TraceCtx::parse_traceparent(&header), Some(ctx));
    }

    #[test]
    fn parse_rejects_malformed_values() {
        assert_eq!(TraceCtx::parse_traceparent(""), None);
        assert_eq!(TraceCtx::parse_traceparent("not-a-header"), None);
        // Wrong field widths.
        assert_eq!(TraceCtx::parse_traceparent("00-abc-def-01"), None);
        // All-zero ids are invalid per the spec.
        assert_eq!(
            TraceCtx::parse_traceparent(&format!("00-{:032x}-{:016x}-01", 0, 1)),
            None
        );
        assert_eq!(
            TraceCtx::parse_traceparent(&format!("00-{:032x}-{:016x}-01", 1, 0)),
            None
        );
        // Forbidden version.
        assert_eq!(
            TraceCtx::parse_traceparent(&format!("ff-{:032x}-{:016x}-01", 1, 1)),
            None
        );
        // Non-hex garbage.
        assert_eq!(
            TraceCtx::parse_traceparent("00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-0000000000000001-01"),
            None
        );
    }

    #[test]
    fn seeded_ids_are_deterministic() {
        seed_ids(42);
        let a = TraceCtx::mint();
        seed_ids(42);
        let b = TraceCtx::mint();
        assert_eq!(a, b);
        let c = TraceCtx::mint();
        assert_ne!(b, c, "stream advances");
        assert_ne!(c.trace_id, 0);
        assert_ne!(c.span_id, 0);
    }

    #[test]
    fn child_keeps_trace_id() {
        let parent = TraceCtx::mint();
        let child = parent.child();
        assert_eq!(child.trace_id, parent.trace_id);
        assert_ne!(child.span_id, parent.span_id);
    }

    #[test]
    fn attach_nests_and_restores() {
        assert_eq!(current(), None);
        let a = TraceCtx::mint();
        let b = TraceCtx::mint();
        {
            let _ga = attach(a);
            assert_eq!(current(), Some(a));
            {
                let _gb = attach(b);
                assert_eq!(current(), Some(b));
            }
            assert_eq!(current(), Some(a));
        }
        assert_eq!(current(), None);
    }
}
