//! Fixed-capacity, auto-downsampling time-series samplers.
//!
//! A [`TimeSeries`] records `(x, y)` samples — per-window IPC, low-power
//! residency, guardrail trips — into a bounded buffer. When the buffer
//! fills it *decimates*: every other retained point is dropped and the
//! keep-stride doubles, so an arbitrarily long run always fits in
//! `capacity` points while preserving the first sample, the most recent
//! sample, and the overall shape of the series. Timestamps are enforced
//! monotone non-decreasing, so a snapshot is always plottable as-is.
//!
//! Samplers live in the global [`crate::Registry`] next to counters and
//! gauges (`psca_obs::series("cpu.sim.ipc")`), are serialized into the
//! [`crate::RunReport`] JSON under `"timeseries"`, and can be exported as
//! a CSV artifact with [`series_to_csv`].

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default number of retained points per series.
pub const DEFAULT_CAPACITY: usize = 512;

#[derive(Debug)]
struct Inner {
    /// Retained points, monotone non-decreasing in `x`.
    points: Vec<(u64, f64)>,
    /// Record every `stride`-th pushed sample; doubles on decimation.
    stride: u64,
    /// Total samples ever pushed (also the auto-`x` source). Deliberately
    /// *not* cleared by [`TimeSeries::reset`] so auto-timestamps stay
    /// monotone across per-experiment resets.
    pushed: u64,
    /// Most recent sample, retained even when the stride skips it.
    last: Option<(u64, f64)>,
}

/// Bounded sampler for one named series.
///
/// # Examples
///
/// ```
/// use psca_obs::timeseries::TimeSeries;
///
/// let s = TimeSeries::with_capacity(4);
/// for v in 0..100 {
///     s.push(v as f64);
/// }
/// let pts = s.snapshot();
/// assert!(pts.len() <= 5); // capacity + the live last sample
/// assert_eq!(pts.first().unwrap().0, 0); // first sample survives
/// assert_eq!(pts.last().unwrap().1, 99.0); // last sample survives
/// ```
#[derive(Debug)]
pub struct TimeSeries {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for TimeSeries {
    fn default() -> TimeSeries {
        TimeSeries::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TimeSeries {
    /// Creates a sampler retaining at most `capacity` points (minimum 2).
    pub fn with_capacity(capacity: usize) -> TimeSeries {
        TimeSeries {
            capacity: capacity.max(2),
            inner: Mutex::new(Inner {
                points: Vec::new(),
                stride: 1,
                pushed: 0,
                last: None,
            }),
        }
    }

    /// Records a sample with an automatic timestamp (the push index).
    pub fn push(&self, y: f64) {
        let mut g = self.inner.lock().unwrap();
        let x = g.pushed;
        self.push_locked(&mut g, x, y);
    }

    /// Records a sample at an explicit timestamp (window index,
    /// instruction count, ...). Timestamps are clamped to be monotone
    /// non-decreasing.
    pub fn push_at(&self, x: u64, y: f64) {
        let mut g = self.inner.lock().unwrap();
        let x = match g.last {
            Some((lx, _)) => x.max(lx),
            None => x,
        };
        self.push_locked(&mut g, x, y);
    }

    fn push_locked(&self, g: &mut Inner, x: u64, y: f64) {
        let keep = g.pushed.is_multiple_of(g.stride);
        g.pushed += 1;
        g.last = Some((x, y));
        if !keep {
            return;
        }
        g.points.push((x, y));
        if g.points.len() >= self.capacity {
            // Decimate: keep even indices (the first point survives) and
            // double the stride so the buffer refills at half the rate.
            let mut i = 0;
            g.points.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            g.stride = g.stride.saturating_mul(2);
        }
    }

    /// Number of retained points (excluding the implicit live last point).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().points.len()
    }

    /// Whether no sample has been recorded since creation/reset.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().last.is_none()
    }

    /// Total samples pushed over the sampler's lifetime (not reset).
    pub fn pushed(&self) -> u64 {
        self.inner.lock().unwrap().pushed
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<(u64, f64)> {
        self.inner.lock().unwrap().last
    }

    /// The retained points plus the most recent sample (if the stride
    /// skipped it). Monotone non-decreasing in `x`.
    pub fn snapshot(&self) -> Vec<(u64, f64)> {
        let g = self.inner.lock().unwrap();
        let mut pts = g.points.clone();
        if let Some(last) = g.last {
            if pts.last() != Some(&last) {
                pts.push(last);
            }
        }
        pts
    }

    /// Clears retained points (per-run scoping). The push counter is kept
    /// so auto-timestamps remain monotone across resets.
    pub fn reset(&self) {
        let mut g = self.inner.lock().unwrap();
        g.points.clear();
        g.last = None;
        g.stride = 1;
    }
}

/// Renders named series as a CSV artifact (`series,x,y` rows).
pub fn series_to_csv(series: &BTreeMap<String, Vec<(u64, f64)>>) -> String {
    let mut out = String::from("series,x,y\n");
    for (name, pts) in series {
        for (x, y) in pts {
            out.push_str(&format!("{name},{x},{y}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_snapshot_is_empty() {
        let s = TimeSeries::default();
        assert!(s.is_empty());
        assert!(s.snapshot().is_empty());
        assert_eq!(s.last(), None);
    }

    #[test]
    fn downsampling_preserves_first_last_and_monotonicity() {
        let s = TimeSeries::with_capacity(32);
        for v in 0..10_000u64 {
            s.push(v as f64);
        }
        let pts = s.snapshot();
        assert!(pts.len() <= 33, "retained {} points", pts.len());
        assert_eq!(pts.first(), Some(&(0, 0.0)));
        assert_eq!(pts.last(), Some(&(9_999, 9_999.0)));
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0, "timestamps must be monotone: {w:?}");
        }
    }

    #[test]
    fn explicit_timestamps_are_clamped_monotone() {
        let s = TimeSeries::default();
        s.push_at(100, 1.0);
        s.push_at(50, 2.0); // out of order: clamped to 100
        s.push_at(200, 3.0);
        let pts = s.snapshot();
        assert_eq!(pts.iter().map(|p| p.0).collect::<Vec<_>>(), [100, 100, 200]);
    }

    #[test]
    fn reset_clears_points_but_keeps_auto_x_monotone() {
        let s = TimeSeries::default();
        s.push(1.0);
        s.push(2.0);
        s.reset();
        assert!(s.is_empty());
        s.push(3.0);
        assert_eq!(s.snapshot(), vec![(2, 3.0)]);
        assert_eq!(s.pushed(), 3);
    }

    #[test]
    fn csv_lists_every_point() {
        let mut m = BTreeMap::new();
        m.insert("ipc".to_string(), vec![(0u64, 1.5), (1, 2.0)]);
        let csv = series_to_csv(&m);
        assert_eq!(csv, "series,x,y\nipc,0,1.5\nipc,1,2\n");
    }
}
