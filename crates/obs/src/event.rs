//! Structured, level-filtered discrete events.
//!
//! An event is a name (`"guardrail.trip"`), a [`Level`], and a small set
//! of typed fields. Emission is near-zero-cost when nothing is listening:
//! [`emit`] first checks one relaxed atomic (the level filter) and the
//! sink count before building anything.
//!
//! The filter level comes from the `PSCA_LOG` environment variable
//! (`trace | debug | info | warn | error | off`, default `off` so library
//! consumers pay nothing) and can be overridden programmatically with
//! [`set_level`]. Sinks are installed by binaries: [`ConsoleSink`] writes
//! a human-readable line to stderr, [`JsonlSink`] appends one JSON object
//! per line to any writer.

use crate::json::Json;
use std::io::Write;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-decision detail (e.g. each gating decision).
    Trace = 0,
    /// Per-window or per-round detail.
    Debug = 1,
    /// Run-level milestones.
    Info = 2,
    /// Degraded-but-continuing conditions (guardrail trips, SLA breaches).
    Warn = 3,
    /// Unrecoverable conditions.
    Error = 4,
}

impl Level {
    /// Lower-case name, as used by `PSCA_LOG` and the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a `PSCA_LOG`-style level name (`trace | debug | info |
    /// warn | error`); `off` and unknown strings yield `None`.
    pub fn from_env_str(s: &str) -> Option<Level> {
        Level::from_str(s)
    }

    fn from_str(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned count.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl FieldValue {
    fn to_json(&self) -> Json {
        match self {
            FieldValue::U64(v) => Json::UInt(*v),
            FieldValue::I64(v) => Json::Int(*v),
            FieldValue::F64(v) => Json::Num(*v),
            FieldValue::Str(v) => Json::Str(v.clone()),
            FieldValue::Bool(v) => Json::Bool(*v),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One structured event, as delivered to sinks.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Severity.
    pub level: Level,
    /// Dotted event name, `subsystem.event` (see docs/OBSERVABILITY.md).
    pub name: String,
    /// Field key–value pairs, in emission order.
    pub fields: Vec<(String, FieldValue)>,
    /// Microseconds since the Unix epoch (0 when timestamps disabled).
    pub ts_us: u64,
}

impl EventRecord {
    /// The JSONL encoding of this record.
    pub fn to_jsonl(&self) -> String {
        let mut pairs: Vec<(String, Json)> = Vec::with_capacity(self.fields.len() + 3);
        if self.ts_us != 0 {
            pairs.push(("ts_us".into(), Json::UInt(self.ts_us)));
        }
        pairs.push(("level".into(), Json::Str(self.level.name().into())));
        pairs.push(("event".into(), Json::Str(self.name.clone())));
        let fields: Vec<(String, Json)> = self
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect();
        pairs.push(("fields".into(), Json::Obj(fields)));
        Json::Obj(pairs).to_string()
    }
}

/// Receiver of emitted events.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn write_event(&self, record: &EventRecord);
    /// Flushes buffered output (called by [`flush`]).
    fn flush(&self) {}
}

/// Human-readable sink writing `LEVEL event k=v ...` lines to stderr.
#[derive(Debug, Default)]
pub struct ConsoleSink;

impl EventSink for ConsoleSink {
    fn write_event(&self, record: &EventRecord) {
        let mut line = format!("[{:>5}] {}", record.level.name(), record.name);
        for (k, v) in &record.fields {
            match v {
                FieldValue::U64(x) => line.push_str(&format!(" {k}={x}")),
                FieldValue::I64(x) => line.push_str(&format!(" {k}={x}")),
                FieldValue::F64(x) => line.push_str(&format!(" {k}={x:.4}")),
                FieldValue::Str(x) => line.push_str(&format!(" {k}={x}")),
                FieldValue::Bool(x) => line.push_str(&format!(" {k}={x}")),
            }
        }
        eprintln!("{line}");
    }
}

/// Machine-readable sink appending one JSON object per event.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
    timestamps: bool,
}

impl JsonlSink {
    /// Wraps any writer (a `File`, a `Vec<u8>` buffer in tests, ...).
    pub fn new(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            writer: Mutex::new(writer),
            timestamps: true,
        }
    }

    /// Opens (creates/truncates) a JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        Ok(JsonlSink::new(Box::new(std::fs::File::create(path)?)))
    }

    /// Disables timestamps (stable output for golden tests).
    pub fn without_timestamps(mut self) -> JsonlSink {
        self.timestamps = false;
        self
    }

    /// Whether records get a `ts_us` field.
    pub fn timestamps(&self) -> bool {
        self.timestamps
    }
}

impl EventSink for JsonlSink {
    fn write_event(&self, record: &EventRecord) {
        let record = if self.timestamps {
            record.clone()
        } else {
            let mut r = record.clone();
            r.ts_us = 0;
            r
        };
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{}", record.to_jsonl());
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

const LEVEL_OFF: u8 = 5;
const LEVEL_UNINIT: u8 = 255;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);
static SINK_COUNT: AtomicUsize = AtomicUsize::new(0);

fn sinks() -> &'static RwLock<Vec<Box<dyn EventSink>>> {
    static SINKS: OnceLock<RwLock<Vec<Box<dyn EventSink>>>> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

fn level_filter() -> u8 {
    let l = LEVEL.load(Ordering::Relaxed);
    if l != LEVEL_UNINIT {
        return l;
    }
    let parsed = std::env::var("PSCA_LOG")
        .ok()
        .and_then(|v| {
            Level::from_str(&v)
                .map(|l| l as u8)
                .or_else(|| v.trim().eq_ignore_ascii_case("off").then_some(LEVEL_OFF))
        })
        .unwrap_or(LEVEL_OFF);
    LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// Overrides the `PSCA_LOG` filter; `None` silences all events.
pub fn set_level(level: Option<Level>) {
    LEVEL.store(
        level.map(|l| l as u8).unwrap_or(LEVEL_OFF),
        Ordering::Relaxed,
    );
}

/// Whether events at `level` would currently be delivered.
#[inline]
pub fn enabled(level: Level) -> bool {
    SINK_COUNT.load(Ordering::Relaxed) > 0 && (level as u8) >= level_filter()
}

/// Installs a sink; events at or above the filter level flow to it.
pub fn install_sink(sink: Box<dyn EventSink>) {
    sinks().write().unwrap().push(sink);
    SINK_COUNT.fetch_add(1, Ordering::Relaxed);
}

/// Removes all sinks (tests and run teardown).
pub fn clear_sinks() {
    sinks().write().unwrap().clear();
    SINK_COUNT.store(0, Ordering::Relaxed);
}

/// Flushes every installed sink.
pub fn flush() {
    for sink in sinks().read().unwrap().iter() {
        sink.flush();
    }
}

/// Emits one structured event to every installed sink.
///
/// Cheap when disabled: one atomic load for the sink count and one for
/// the level filter, no allocation.
pub fn emit(level: Level, name: &str, fields: &[(&str, FieldValue)]) {
    if !enabled(level) {
        return;
    }
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let record = EventRecord {
        level,
        name: name.to_string(),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        ts_us,
    };
    for sink in sinks().read().unwrap().iter() {
        sink.write_event(&record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::from_str("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::from_str(" warn "), Some(Level::Warn));
        assert_eq!(Level::from_str("nope"), None);
    }

    #[test]
    fn record_jsonl_shape_without_timestamp() {
        let r = EventRecord {
            level: Level::Warn,
            name: "guardrail.trip".into(),
            fields: vec![
                ("trips".into(), FieldValue::U64(3)),
                ("ipc".into(), FieldValue::F64(1.5)),
            ],
            ts_us: 0,
        };
        assert_eq!(
            r.to_jsonl(),
            r#"{"level":"warn","event":"guardrail.trip","fields":{"trips":3,"ipc":1.5}}"#
        );
    }
}
