//! Minimal JSON value model and serializer (no external dependencies).
//!
//! Only what the observability layer needs: objects preserve insertion
//! order (so reports and JSONL events are stable for golden tests), and
//! unsigned counts serialize as integers rather than floats.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (counters, counts).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number. Non-finite values serialize as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key–value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest round-trippable representation Rust offers.
                    let s = format!("{x}");
                    out.push_str(&s);
                    // "{x}" prints integral floats without a dot; that is
                    // still valid JSON, so leave it.
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to a compact JSON string (`to_string()` via [`ToString`]).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_orders_keys() {
        let j = Json::obj(vec![
            ("b", Json::UInt(2)),
            ("a", Json::Str("x\"y\n".into())),
        ]);
        assert_eq!(j.to_string(), r#"{"b":2,"a":"x\"y\n"}"#);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn arrays_nest() {
        let j = Json::Arr(vec![Json::Null, Json::Bool(true), Json::Int(-3)]);
        assert_eq!(j.to_string(), "[null,true,-3]");
    }
}
