//! Minimal JSON value model, serializer, and parser (no external
//! dependencies).
//!
//! Only what the observability layer needs: objects preserve insertion
//! order (so reports and JSONL events are stable for golden tests),
//! unsigned counts serialize as integers rather than floats, and
//! [`Json::parse`] round-trips artifacts (run reports, Chrome trace
//! files) back into the value model for tests and tooling.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (counters, counts).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number. Non-finite values serialize as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key–value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a [`JsonParseError`] naming the byte offset of the first
    /// syntax error, or trailing non-whitespace after the document.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value as `f64` (covers `UInt`, `Int`, and `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `u64`, when it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest round-trippable representation Rust offers.
                    let s = format!("{x}");
                    out.push_str(&s);
                    // "{x}" prints integral floats without a dot; that is
                    // still valid JSON, so leave it.
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to a compact JSON string (`to_string()` via [`ToString`]).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Syntax error from [`Json::parse`], with the byte offset of the fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonParseError {
                message: "invalid number".to_string(),
                offset: start,
            })
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_orders_keys() {
        let j = Json::obj(vec![
            ("b", Json::UInt(2)),
            ("a", Json::Str("x\"y\n".into())),
        ]);
        assert_eq!(j.to_string(), r#"{"b":2,"a":"x\"y\n"}"#);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn arrays_nest() {
        let j = Json::Arr(vec![Json::Null, Json::Bool(true), Json::Int(-3)]);
        assert_eq!(j.to_string(), "[null,true,-3]");
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let j = Json::obj(vec![
            ("s", Json::Str("x\"y\n\u{1}".into())),
            ("u", Json::UInt(18_446_744_073_709_551_615)),
            ("i", Json::Int(-42)),
            ("f", Json::Num(2.5)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(false)])),
            ("o", Json::obj(vec![("k", Json::Num(1e-3))])),
        ]);
        let text = j.to_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn parse_handles_whitespace_and_nesting() {
        let j = Json::parse(" { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ").unwrap();
        let arr = j.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_decodes_unicode_escapes() {
        // Raw UTF-8 passes through; \u escapes decode, including a
        // surrogate pair for an astral-plane scalar.
        assert_eq!(Json::parse(r#""é😀""#).unwrap(), Json::Str("é😀".into()));
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".into())
        );
    }
}
