//! Concurrent-writers stress tests: the registry, the atomic metric
//! primitives, and the /metrics exporter snapshot path must tolerate many
//! worker threads recording at once (the psca-exec pool does exactly
//! this) without losing counts or panicking.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 20_000;

#[test]
fn concurrent_counter_and_histogram_writers_lose_nothing() {
    let counter = psca_obs::counter("conc.counter");
    let histogram = psca_obs::histogram("conc.histogram");
    counter.reset();
    histogram.reset();

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            s.spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    counter.inc();
                    histogram.record((w as u64) * 1000 + (i % 97));
                }
            });
        }
    });

    assert_eq!(counter.get(), WRITERS as u64 * OPS_PER_WRITER);
    assert_eq!(histogram.count(), WRITERS as u64 * OPS_PER_WRITER);
}

#[test]
fn concurrent_registry_lookups_resolve_to_one_instance() {
    let handles: Vec<Arc<psca_obs::Counter>> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..WRITERS)
            .map(|_| {
                s.spawn(|| {
                    let c = psca_obs::counter("conc.same_instance");
                    c.inc();
                    c
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    for h in &handles {
        assert!(Arc::ptr_eq(h, &handles[0]), "registry must dedupe by name");
    }
    assert_eq!(handles[0].get(), WRITERS as u64);
}

#[test]
fn snapshots_while_writers_run_never_panic_and_end_exact() {
    let counter = psca_obs::counter("conc.snapshot_target");
    counter.reset();
    let series = psca_obs::series("conc.snapshot_series");
    series.reset();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let counter = counter.clone();
            s.spawn(move || {
                for _ in 0..OPS_PER_WRITER {
                    counter.inc();
                }
            });
        }
        // A reader thread hammers the same snapshot path the /metrics
        // exporter and RunReport serialization use, mid-write.
        let stop = &stop;
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let snap = psca_obs::snapshot();
                let rendered = psca_obs::exporter::prometheus_text(&snap);
                assert!(rendered.contains("conc_snapshot_target"));
            }
        });
        // Main thread pushes the order-sensitive series serially (the
        // sweep engine's contract: series writers are single-threaded or
        // shard-buffered, never interleaved).
        for i in 0..100 {
            series.push(i as f64);
        }
        // Signal the reader once the writers are done; the scope then
        // joins everything.
        while counter.get() < WRITERS as u64 * OPS_PER_WRITER {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(counter.get(), WRITERS as u64 * OPS_PER_WRITER);
    assert_eq!(series.snapshot().len(), 100);
}

#[test]
fn sharded_series_capture_is_thread_isolated() {
    // Two worker threads each record into their own cell shard; replaying
    // in cell order must interleave nothing.
    let recs: Vec<psca_obs::shard::CellRecording> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..2)
            .map(|w| {
                s.spawn(move || {
                    psca_obs::shard::begin_cell();
                    let h = psca_obs::series_handle("conc.sharded");
                    for i in 0..50 {
                        h.push((w * 1000 + i) as f64);
                    }
                    psca_obs::shard::end_cell()
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    assert_eq!(recs[0].len(), 50);
    assert_eq!(recs[1].len(), 50);

    psca_obs::series("conc.sharded").reset();
    for rec in &recs {
        psca_obs::shard::replay(rec);
    }
    let ys: Vec<f64> = psca_obs::series("conc.sharded")
        .snapshot()
        .iter()
        .map(|p| p.1)
        .collect();
    // Recording 0 fully precedes recording 1 — deterministic merge order.
    let split = ys.iter().position(|&y| y >= 1000.0).unwrap();
    assert!(ys[..split].iter().all(|&y| y < 1000.0));
    assert!(ys[split..].iter().all(|&y| y >= 1000.0));
}
