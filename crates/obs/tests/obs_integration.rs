//! Cross-layer tests that exercise the global registry and sink state,
//! kept in an integration test so they own the process-wide singletons.

use psca_obs::{
    clear_sinks, emit, install_sink, set_level, FieldValue, Histogram, JsonlSink, Level,
};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// `Write` adapter that mirrors everything into a shared buffer so the
/// test can read back what the sink wrote.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn counter_is_atomic_under_thread_fanout() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                let c = psca_obs::counter("it_fanout_counter");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        psca_obs::counter("it_fanout_counter").get(),
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn histogram_quantiles_on_known_uniform_distribution() {
    let h = Histogram::new();
    // 1..=1000 uniformly: true p50 = 500, p95 = 950, p99 = 990.
    for v in 1..=1000u64 {
        h.record(v);
    }
    assert_eq!(h.count(), 1000);
    assert_eq!(h.min(), Some(1));
    assert_eq!(h.max(), Some(1000));
    // Bucket lower edges guarantee ~9% relative error, from below only.
    let p50 = h.quantile(0.50).unwrap();
    assert!((455..=500).contains(&p50), "p50 = {p50}");
    let p95 = h.quantile(0.95).unwrap();
    assert!((864..=950).contains(&p95), "p95 = {p95}");
    let p99 = h.quantile(0.99).unwrap();
    assert!((901..=990).contains(&p99), "p99 = {p99}");
    // Extremes are exact.
    assert_eq!(h.quantile(0.0), Some(1));
    assert!(h.quantile(1.0).unwrap() >= 960);
}

#[test]
fn histogram_quantiles_on_point_mass() {
    let h = Histogram::new();
    for _ in 0..100 {
        h.record(7);
    }
    // Values below SUB_BUCKETS are bucketed exactly.
    assert_eq!(h.quantile(0.5), Some(7));
    assert_eq!(h.quantile(0.99), Some(7));
    assert_eq!(h.mean(), 7.0);
}

#[test]
fn jsonl_sink_golden_file() {
    let buf = SharedBuf::default();
    clear_sinks();
    set_level(Some(Level::Info));
    install_sink(Box::new(
        JsonlSink::new(Box::new(buf.clone())).without_timestamps(),
    ));

    emit(
        Level::Warn,
        "guardrail.trip",
        &[
            ("trips", FieldValue::U64(3)),
            ("ipc", FieldValue::F64(1.5)),
            ("app", FieldValue::Str("654.roms_s".into())),
        ],
    );
    emit(
        Level::Info,
        "train.round",
        &[
            ("model", FieldValue::Str("best-rf".into())),
            ("wall_ms", FieldValue::U64(12)),
        ],
    );
    // Below the Info filter: must not reach the sink.
    emit(Level::Debug, "cpu.mode_switch", &[]);

    clear_sinks();
    set_level(None);

    let written = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let golden = "\
{\"level\":\"warn\",\"event\":\"guardrail.trip\",\"fields\":{\"trips\":3,\"ipc\":1.5,\"app\":\"654.roms_s\"}}
{\"level\":\"info\",\"event\":\"train.round\",\"fields\":{\"model\":\"best-rf\",\"wall_ms\":12}}
";
    assert_eq!(written, golden);
}
