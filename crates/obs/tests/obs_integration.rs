//! Cross-layer tests that exercise the global registry and sink state,
//! kept in an integration test so they own the process-wide singletons.

use psca_obs::{
    clear_sinks, emit, install_sink, set_level, FieldValue, Histogram, JsonlSink, Level,
    MetricsServer, TimeSeries,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

/// `Write` adapter that mirrors everything into a shared buffer so the
/// test can read back what the sink wrote.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn counter_is_atomic_under_thread_fanout() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                let c = psca_obs::counter("it_fanout_counter");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        psca_obs::counter("it_fanout_counter").get(),
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn histogram_quantiles_on_known_uniform_distribution() {
    let h = Histogram::new();
    // 1..=1000 uniformly: true p50 = 500, p95 = 950, p99 = 990.
    for v in 1..=1000u64 {
        h.record(v);
    }
    assert_eq!(h.count(), 1000);
    assert_eq!(h.min(), Some(1));
    assert_eq!(h.max(), Some(1000));
    // Bucket lower edges guarantee ~9% relative error, from below only.
    let p50 = h.quantile(0.50).unwrap();
    assert!((455..=500).contains(&p50), "p50 = {p50}");
    let p95 = h.quantile(0.95).unwrap();
    assert!((864..=950).contains(&p95), "p95 = {p95}");
    let p99 = h.quantile(0.99).unwrap();
    assert!((901..=990).contains(&p99), "p99 = {p99}");
    // Extremes are exact.
    assert_eq!(h.quantile(0.0), Some(1));
    assert!(h.quantile(1.0).unwrap() >= 960);
}

#[test]
fn histogram_quantiles_on_point_mass() {
    let h = Histogram::new();
    for _ in 0..100 {
        h.record(7);
    }
    // Values below SUB_BUCKETS are bucketed exactly.
    assert_eq!(h.quantile(0.5), Some(7));
    assert_eq!(h.quantile(0.99), Some(7));
    assert_eq!(h.mean(), 7.0);
}

#[test]
fn jsonl_sink_golden_file() {
    let buf = SharedBuf::default();
    clear_sinks();
    set_level(Some(Level::Info));
    install_sink(Box::new(
        JsonlSink::new(Box::new(buf.clone())).without_timestamps(),
    ));

    emit(
        Level::Warn,
        "guardrail.trip",
        &[
            ("trips", FieldValue::U64(3)),
            ("ipc", FieldValue::F64(1.5)),
            ("app", FieldValue::Str("654.roms_s".into())),
        ],
    );
    emit(
        Level::Info,
        "train.round",
        &[
            ("model", FieldValue::Str("best-rf".into())),
            ("wall_ms", FieldValue::U64(12)),
        ],
    );
    // Below the Info filter: must not reach the sink.
    emit(Level::Debug, "cpu.mode_switch", &[]);

    clear_sinks();
    set_level(None);

    let written = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let golden = "\
{\"level\":\"warn\",\"event\":\"guardrail.trip\",\"fields\":{\"trips\":3,\"ipc\":1.5,\"app\":\"654.roms_s\"}}
{\"level\":\"info\",\"event\":\"train.round\",\"fields\":{\"model\":\"best-rf\",\"wall_ms\":12}}
";
    assert_eq!(written, golden);
}

#[test]
fn prometheus_exposition_parses_line_by_line() {
    use psca_obs::{HistogramSummary, MetricsSnapshot};
    let mut snap = MetricsSnapshot::default();
    snap.counters.insert("it.promparse.count".into(), 42);
    snap.gauges.insert("it.promparse.level".into(), -0.25);
    snap.histograms.insert(
        "it.promparse.lat_ns".into(),
        HistogramSummary {
            count: 3,
            sum: 60,
            min: 10,
            max: 30,
            p50: 20,
            p95: 30,
            p99: 30,
        },
    );
    snap.series
        .insert("it.promparse.ipc".into(), vec![(0, 1.0), (1, 2.0)]);
    let text = psca_obs::exporter::prometheus_text(&snap);
    assert!(!text.is_empty());
    let name_ok = |n: &str| {
        !n.is_empty()
            && !n.starts_with(|c: char| c.is_ascii_digit())
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line has a metric name");
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(name_ok(name), "bad metric name in {line:?}");
            assert!(
                ["counter", "gauge", "summary"].contains(&kind),
                "bad kind in {line:?}"
            );
            assert_eq!(parts.next(), None, "trailing tokens in {line:?}");
        } else {
            // Sample line: `name[{labels}] value`.
            let (name_part, value) = line.rsplit_once(' ').expect("sample has name and value");
            let bare = name_part.split('{').next().unwrap();
            assert!(name_ok(bare), "bad sample name in {line:?}");
            if let Some(labels) = name_part.strip_prefix(bare) {
                if !labels.is_empty() {
                    assert!(
                        labels.starts_with('{') && labels.ends_with('}'),
                        "malformed labels in {line:?}"
                    );
                }
            }
            assert!(
                value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                "unparseable value in {line:?}"
            );
        }
    }
    // All four metric kinds must appear, with dots mapped to underscores.
    assert!(text.contains("it_promparse_count 42"));
    assert!(text.contains("it_promparse_level -0.25"));
    assert!(text.contains("it_promparse_lat_ns{quantile=\"0.5\"} 20"));
    assert!(text.contains("it_promparse_ipc_last 2"));
}

#[test]
fn trace_file_round_trips_as_valid_trace_event_json() {
    let path = std::env::temp_dir().join(format!("psca_obs_it_trace_{}.json", std::process::id()));
    assert!(psca_obs::trace::enable(&path), "recorder already active");
    {
        let _outer = psca_obs::SpanTimer::start("it_trace_outer");
        let _inner = psca_obs::SpanTimer::start("it_trace_inner");
        psca_obs::trace::instant(
            "it.trace.event",
            &[
                ("k", FieldValue::U64(1)),
                ("tag", FieldValue::Str("x".into())),
            ],
        );
        psca_obs::trace::counter_event("it.trace.ipc", 2.5);
    }
    let written = psca_obs::trace::finish().expect("finish returns the path");
    assert_eq!(written, path);
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let parsed = psca_obs::Json::parse(&text).expect("trace file is valid JSON");
    let events = parsed.as_arr().expect("trace file is a JSON array");
    assert!(
        events.len() >= 4,
        "expected >= 4 events, got {}",
        events.len()
    );
    let mut phases = std::collections::BTreeSet::new();
    for ev in events {
        assert!(ev.get("name").and_then(|n| n.as_str()).is_some());
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph present");
        phases.insert(ph.to_string());
        assert!(ev.get("pid").and_then(|p| p.as_u64()).is_some());
        if ph == "X" {
            assert!(ev.get("ts").and_then(|t| t.as_u64()).is_some());
            assert!(ev.get("dur").and_then(|d| d.as_u64()).unwrap() >= 1);
        }
    }
    for expected in ["X", "i", "C", "M"] {
        assert!(phases.contains(expected), "missing phase {expected:?}");
    }
    // Spans must appear under their dot-joined paths.
    assert!(text.contains("it_trace_outer.it_trace_inner"));
}

#[test]
fn ring_buffer_downsampling_keeps_endpoints_and_monotone_x() {
    let ts = TimeSeries::with_capacity(64);
    const N: u64 = 5_000;
    for i in 0..N {
        ts.push(i as f64);
    }
    let pts = ts.snapshot();
    assert!(pts.len() <= 65, "capacity overrun: {}", pts.len());
    assert_eq!(pts.first().copied(), Some((0, 0.0)), "first sample dropped");
    assert_eq!(
        pts.last().copied(),
        Some((N - 1, (N - 1) as f64)),
        "live last sample missing"
    );
    for w in pts.windows(2) {
        assert!(
            w[0].0 < w[1].0,
            "non-monotone x: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn metrics_server_serves_healthz_and_metrics_over_a_real_socket() {
    psca_obs::counter("it.exporter.requests").add(5);
    let server = MetricsServer::start("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = server.local_addr();

    let get = |path: &str| -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to exporter");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    };

    let health = get("/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    let metrics = get("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
    assert!(metrics.contains("it_exporter_requests"), "{metrics}");

    let missing = get("/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    server.shutdown();
}
