//! Divergence and identity gates for the two [`psca::cpu::SimBackend`]
//! fidelities (`docs/SURROGATE.md`).
//!
//! - The `CycleAccurate` backend must be bit-identical to the
//!   pre-`SimBackend` code path: closed-loop outputs are pinned to golden
//!   values captured before the refactor landed.
//! - The `Surrogate` backend must stay inside per-archetype IPC-ratio
//!   error bounds against the reference simulator, reproduce Table 3
//!   within tolerance when it substitutes for the reference in corpus
//!   collection, be bit-identical across sweep worker counts, and never
//!   share sweep-cache cells with the reference fidelity.

use psca::adapt::experiments::table3;
use psca::adapt::{
    collect_paired, record_trace, ClosedLoopRequest, CorpusTelemetry, ExperimentConfig, ModelKind,
    TrainedAdaptModel,
};
use psca::cpu::{BackendChoice, CpuConfig, Mode};
use psca::trace::{TraceSource, VecTrace};
use psca::workloads::{Archetype, PhaseGenerator};

fn corpus_and_model() -> (TrainedAdaptModel, ExperimentConfig) {
    let mut traces = Vec::new();
    for (i, a) in [
        Archetype::DepChain,
        Archetype::ScalarIlp,
        Archetype::MemBound,
        Archetype::Balanced,
    ]
    .iter()
    .enumerate()
    {
        let mut gen = PhaseGenerator::new(a.center(), i as u64 + 30);
        traces.push(collect_paired(&mut gen, 2_000, 24, 2_000, i as u32, "t", 1));
    }
    let corpus = CorpusTelemetry { traces };
    let cfg = ExperimentConfig::quick();
    let model = psca::adapt::zoo::train(ModelKind::BestRf, &corpus, &cfg);
    (model, cfg)
}

/// Golden values captured from the pre-refactor closed loop (commit
/// a1331a1 lineage, before `SimBackend` existed). `CycleAccurate` is a
/// zero-cost wrapper, so every bit must still match.
#[test]
fn cycle_accurate_is_bit_identical_to_pre_refactor_outputs() {
    const ENERGY_BITS: u64 = 0x41032ee2b851eb85;
    const CYCLES: u64 = 57_237;
    const INSTS: u64 = 48_000;
    const RESIDENCY_BITS: u64 = 0x3fe5555555555555;

    let (model, cfg) = corpus_and_model();
    let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 99);
    let (warm, window) = record_trace(&mut gen, 2_000, 48_000);

    let plain = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();
    assert_eq!(plain.energy.to_bits(), ENERGY_BITS);
    assert_eq!(plain.cycles, CYCLES);
    assert_eq!(plain.instructions, INSTS);
    assert_eq!(plain.low_power_residency.to_bits(), RESIDENCY_BITS);
    assert_eq!(plain.modes.len(), 6);
    assert_eq!(
        plain.modes.iter().filter(|m| **m == Mode::LowPower).count(),
        4
    );

    let hard = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts)
        .hardened()
        .run_hardened();
    assert_eq!(hard.result.energy.to_bits(), ENERGY_BITS);
    assert_eq!(hard.result.cycles, CYCLES);
    assert_eq!(hard.result.instructions, INSTS);
    assert_eq!(hard.result.low_power_residency.to_bits(), RESIDENCY_BITS);
}

/// Per-archetype divergence gate: surrogate/reference IPC ratio over a
/// long closed-loop run (the BENCH_surrogate protocol at reduced length).
///
/// Bounds are frozen around measured ratios at seed 7 (ScalarIlp 0.93,
/// DepChain 0.93, Balanced 0.58, PointerChase 0.63, MemBound 1.98) with
/// drift margin. Compute-bound archetypes track within ~10%; memory-bound
/// ones are bounded to ~2x because a few-hundred-instruction sample
/// cannot fully observe steady-state cache state (`docs/SURROGATE.md`
/// documents the error model; verdict-bearing paths reject the surrogate
/// outright).
#[test]
fn surrogate_ipc_stays_within_per_archetype_bounds() {
    const INTERVAL: u64 = 50_000;
    const WARM: u64 = 20_000;
    const INTERVALS: u64 = 8;
    let cfg = CpuConfig::skylake_scaled();
    let bounds = [
        (Archetype::ScalarIlp, 0.80, 1.10),
        (Archetype::DepChain, 0.80, 1.10),
        (Archetype::Balanced, 0.45, 1.35),
        (Archetype::PointerChase, 0.45, 1.35),
        (Archetype::MemBound, 0.55, 2.40),
    ];
    for (archetype, lo, hi) in bounds {
        let mut gen = PhaseGenerator::new(archetype.center(), 7);
        let insts: Vec<_> = (0..WARM + INTERVALS * INTERVAL)
            .map(|_| gen.next_instruction().unwrap())
            .collect();
        let mut ipc = [0.0f64; 2];
        for (i, choice) in [BackendChoice::CycleAccurate, BackendChoice::Surrogate]
            .into_iter()
            .enumerate()
        {
            let mut backend = choice.build(cfg.clone(), INTERVAL);
            let mut trace = VecTrace::new(insts.clone());
            backend.warm_up(&mut trace, WARM);
            let (mut cycles, mut n) = (0u64, 0u64);
            while let Some(r) = backend.run_interval(&mut trace, INTERVAL) {
                cycles += r.snapshot.cycles;
                n += r.instructions;
            }
            ipc[i] = n as f64 / cycles as f64;
        }
        let ratio = ipc[1] / ipc[0];
        assert!(
            (lo..=hi).contains(&ratio),
            "{archetype:?}: surrogate/reference IPC ratio {ratio:.3} outside [{lo}, {hi}] \
             (ref {:.3}, surrogate {:.3})",
            ipc[0],
            ipc[1]
        );
    }
}

fn micro_cfg(backend: BackendChoice) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.hdtr_apps = 8;
    cfg.backend = backend;
    cfg
}

/// Table 3 reproduced on a surrogate-collected corpus stays within
/// tolerance of the reference-collected reproduction: budget rows are
/// exact arithmetic (backend-independent, bit-identical) and per-model
/// validation PGOS moves by at most an absolute tolerance.
#[test]
fn table3_reproduces_within_tolerance_on_surrogate_corpus() {
    const PGOS_TOL: f64 = 0.25;

    let ref_cfg = micro_cfg(BackendChoice::CycleAccurate);
    let sur_cfg = micro_cfg(BackendChoice::Surrogate);
    let t_ref = table3::run(&ref_cfg, &CorpusTelemetry::hdtr(&ref_cfg));
    let t_sur = table3::run(&sur_cfg, &CorpusTelemetry::hdtr(&sur_cfg));

    assert_eq!(
        format!("{:?}", t_ref.budget),
        format!("{:?}", t_sur.budget),
        "budget rows are pure arithmetic and must not depend on fidelity"
    );
    assert_eq!(t_ref.models.len(), t_sur.models.len());
    for sur_row in &t_sur.models {
        let ref_row = t_ref
            .models
            .iter()
            .find(|r| r.description == sur_row.description)
            .expect("model class present in both reproductions");
        let delta = (sur_row.pgos - ref_row.pgos).abs();
        assert!(
            delta <= PGOS_TOL,
            "{}: PGOS moved by {delta:.3} (reference {:.3}, surrogate {:.3})",
            sur_row.description,
            ref_row.pgos,
            sur_row.pgos
        );
    }
}

/// Surrogate corpus sweeps are bit-identical across worker counts, like
/// every other sweep (see `tests/parallel_determinism.rs`).
#[test]
fn surrogate_sweep_is_bit_identical_across_job_counts() {
    let mut serial_cfg = micro_cfg(BackendChoice::Surrogate);
    serial_cfg.jobs = 1;
    let mut parallel_cfg = micro_cfg(BackendChoice::Surrogate);
    parallel_cfg.jobs = 4;
    let serial = CorpusTelemetry::hdtr(&serial_cfg);
    let parallel = CorpusTelemetry::hdtr(&parallel_cfg);
    assert_eq!(
        format!("{:?}", serial.traces),
        format!("{:?}", parallel.traces)
    );
}

/// Sweep-cache cells are fidelity-keyed: a surrogate run against a cache
/// populated by a cycle-accurate run must miss every cell (and a repeat
/// surrogate run must hit all of its own).
#[test]
fn sweep_cache_never_collides_across_backends() {
    let dir = std::env::temp_dir().join(format!("psca-surrogate-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cached = |backend: BackendChoice| {
        let mut cfg = micro_cfg(backend);
        cfg.hdtr_apps = 4;
        cfg.sweep_cache = Some(dir.clone());
        cfg
    };
    let cells = |dir: &std::path::Path| {
        std::fs::read_dir(dir)
            .map(|entries| entries.filter_map(Result::ok).count())
            .unwrap_or(0)
    };

    let reference = CorpusTelemetry::hdtr(&cached(BackendChoice::CycleAccurate));
    let ref_cells = cells(&dir);
    assert!(ref_cells > 0, "reference run must populate the cache");

    let surrogate = CorpusTelemetry::hdtr(&cached(BackendChoice::Surrogate));
    let both_cells = cells(&dir);
    assert_eq!(
        both_cells,
        2 * ref_cells,
        "surrogate cells must never be served from cycle-accurate entries"
    );
    assert_ne!(
        format!("{:?}", reference.traces),
        format!("{:?}", surrogate.traces),
        "fidelities produce different telemetry, so cache reuse would be wrong"
    );

    // A repeat surrogate run is a pure cache hit and reproduces the
    // stored telemetry exactly.
    let replay = CorpusTelemetry::hdtr(&cached(BackendChoice::Surrogate));
    assert_eq!(cells(&dir), both_cells);
    assert_eq!(
        format!("{:?}", surrogate.traces),
        format!("{:?}", replay.traces)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
