//! Integration tests of the fault-injection + graceful-degradation story:
//! the hardened closed loop must be bit-identical to the plain loop when
//! faults are off, each fault class must land in its intended fallback
//! tier, and probation must return control to the model.

use std::sync::OnceLock;

use psca::adapt::degrade::{DegradeConfig, DegradeLevel};
use psca::adapt::{
    collect_paired, record_trace, zoo, ClosedLoopRequest, CorpusTelemetry, ExperimentConfig,
    HardenedLoopResult, ModelKind, TrainedAdaptModel,
};
use psca::cpu::Mode;
use psca::faults::ChaosSpec;
use psca::trace::VecTrace;
use psca::workloads::{Archetype, PhaseGenerator};

fn model_and_cfg() -> &'static (TrainedAdaptModel, ExperimentConfig) {
    static CACHE: OnceLock<(TrainedAdaptModel, ExperimentConfig)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut traces = Vec::new();
        for (i, a) in [
            Archetype::DepChain,
            Archetype::ScalarIlp,
            Archetype::MemBound,
            Archetype::Balanced,
        ]
        .iter()
        .enumerate()
        {
            let mut gen = PhaseGenerator::new(a.center(), i as u64 + 30);
            traces.push(collect_paired(&mut gen, 2_000, 24, 2_000, i as u32, "t", 1));
        }
        let corpus = CorpusTelemetry { traces };
        let cfg = ExperimentConfig::quick();
        let model = zoo::train(ModelKind::BestRf, &corpus, &cfg);
        (model, cfg)
    })
}

fn trace_for(arch: Archetype, seed: u64, windows: u64) -> (VecTrace, VecTrace) {
    let (model, cfg) = model_and_cfg();
    let mut gen = PhaseGenerator::new(arch.center(), seed);
    record_trace(
        &mut gen,
        2_000,
        windows * model.granularity_insts(cfg.interval_insts),
    )
}

fn run_with_spec(spec: &str, arch: Archetype, seed: u64, windows: u64) -> HardenedLoopResult {
    let (model, cfg) = model_and_cfg();
    let (warm, window) = trace_for(arch, seed, windows);
    ClosedLoopRequest::new(model, &warm, &window, cfg.interval_insts)
        .with_faults(ChaosSpec::parse(spec).unwrap())
        .with_degrade(DegradeConfig::default())
        .run_hardened()
}

/// The central regression gate: with the injector disabled, the hardened
/// loop's result is bit-identical to the pre-existing plain loop on the
/// same trace and seed.
#[test]
fn hardened_loop_without_faults_is_bit_identical() {
    let (model, cfg) = model_and_cfg();
    for (arch, seed) in [
        (Archetype::DepChain, 55u64),
        (Archetype::ScalarIlp, 78),
        (Archetype::Balanced, 99),
    ] {
        let (warm, window) = trace_for(arch, seed, 24);
        let base = ClosedLoopRequest::new(model, &warm, &window, cfg.interval_insts).run();
        let hardened = ClosedLoopRequest::new(model, &warm, &window, cfg.interval_insts)
            .hardened()
            .run_hardened();
        assert_eq!(
            base, hardened.result,
            "{arch:?}/{seed}: fault-free hardened loop diverged from the plain loop"
        );
        assert!(base.energy.to_bits() == hardened.result.energy.to_bits());
        assert_eq!(hardened.faults.total(), 0);
        assert_eq!(hardened.degrade.transitions, 0);
        assert_eq!(hardened.degrade.worst, DegradeLevel::ModelDriven);
    }
}

/// Each fault class must land in its intended fallback tier, and probation
/// must return the loop to model-driven gating once the burst ends.
#[test]
fn fault_classes_land_in_their_intended_tier() {
    // (spec, worst tier the burst may reach)
    let cases: [(&str, DegradeLevel); 4] = [
        // Two dropped predictions: hold the last decision, nothing worse.
        ("seed=9,burst=2,uc.drop=1.0", DegradeLevel::HoldLast),
        // Two late predictions: a miss then a stale arrival, both held.
        ("seed=9,burst=2,uc.late=1.0", DegradeLevel::HoldLast),
        // Corrupted weights: the value cannot be trusted, heuristic only.
        ("seed=9,burst=2,uc.nan=1.0", DegradeLevel::HeuristicOnly),
        // Poisoned telemetry packet: non-finite features, heuristic only.
        ("seed=9,burst=2,telem.nan=1.0", DegradeLevel::HeuristicOnly),
    ];
    for (spec, tier) in cases {
        // 40 windows: the 2-window burst plus two 6-window probation
        // periods still leaves a clear model-driven majority.
        let res = run_with_spec(spec, Archetype::DepChain, 55, 40);
        assert_eq!(
            res.degrade.worst, tier,
            "spec '{spec}': worst tier {:?}, wanted {tier:?}",
            res.degrade.worst
        );
        assert!(
            res.degrade.escalations > 0,
            "spec '{spec}': ladder never engaged"
        );
        // Probation: the burst is over early, so the run must recover to
        // model-driven gating and spend most windows there.
        assert!(
            res.degrade.recoveries > 0,
            "spec '{spec}': never recovered a tier"
        );
        assert_eq!(
            res.degrade.last,
            DegradeLevel::ModelDriven,
            "spec '{spec}': probation did not return control to the model"
        );
        assert!(
            res.degrade.residency[0] > res.degrade.residency[1..].iter().sum::<u64>(),
            "spec '{spec}': model-driven residency {:?}",
            res.degrade.residency
        );
    }
}

/// A µC that never delivers a prediction walks the full ladder to pinned
/// high-performance and the run still completes with sane accounting.
#[test]
fn sustained_prediction_loss_pins_high_perf() {
    let res = run_with_spec("seed=3,uc.drop=1.0", Archetype::DepChain, 55, 24);
    assert_eq!(res.degrade.worst, DegradeLevel::PinnedHighPerf);
    assert!(res.result.energy.is_finite() && res.result.energy > 0.0);
    // Pinned means the gateable workload is stuck in high-performance
    // mode for most of the run.
    assert!(
        res.result.low_power_residency < 0.3,
        "pinned run should barely gate: {}",
        res.result.low_power_residency
    );
    assert!(res.degrade.residency[DegradeLevel::PinnedHighPerf.rank()] > 0);
}

/// Lost mode-switch requests leave the simulator in its current mode; a
/// gateable workload therefore never leaves high-performance.
#[test]
fn lost_actuation_keeps_the_boot_mode() {
    let res = run_with_spec("seed=5,act.lost=1.0", Archetype::DepChain, 55, 16);
    assert!(res.result.modes.iter().all(|m| *m == Mode::HighPerf));
    assert!(res.faults.act_lost > 0);
    // Losing the actuation write is invisible to the prediction-health
    // watchdog: the ladder must NOT engage for it.
    assert_eq!(res.degrade.worst, DegradeLevel::ModelDriven);
}

/// Corrupted firmware images are always rejected by the checksum/validity
/// gate, never silently loaded.
#[test]
fn corrupted_images_are_rejected() {
    let res = run_with_spec("seed=11,uc.bitflip=1.0", Archetype::Balanced, 99, 16);
    assert!(res.faults.uc_image_bitflip > 0);
    assert_eq!(
        res.images_rejected, res.faults.uc_image_bitflip,
        "every corrupted image must be caught"
    );
}

/// Chaos at the default rates: the loop completes, injects every class
/// eventually, and keeps energy/instruction accounting finite.
#[test]
fn default_chaos_run_is_survivable() {
    let (model, cfg) = model_and_cfg();
    let (warm, window) = trace_for(Archetype::Balanced, 31, 32);
    let mut spec = ChaosSpec::default_chaos();
    spec.seed = 0xFA17;
    let res = ClosedLoopRequest::new(model, &warm, &window, cfg.interval_insts)
        .with_faults(spec)
        .run_hardened();
    assert_eq!(res.result.modes.len(), 32);
    assert!(res.result.energy.is_finite() && res.result.energy > 0.0);
    assert_eq!(res.window_ipc.len(), res.result.modes.len());
    assert!(res.window_ipc.iter().all(|v| v.is_finite() && *v > 0.0));
}

/// An explicit cycle-accurate backend selection is the default: requests
/// with and without `with_backend(CycleAccurate)` are bit-identical, on
/// both the plain and hardened engines.
#[test]
fn explicit_cycle_accurate_backend_matches_default() {
    use psca::adapt::BackendChoice;

    let (model, cfg) = model_and_cfg();
    let (warm, window) = trace_for(Archetype::Balanced, 47, 12);
    let implicit = ClosedLoopRequest::new(model, &warm, &window, cfg.interval_insts).run();
    let explicit = ClosedLoopRequest::new(model, &warm, &window, cfg.interval_insts)
        .with_backend(BackendChoice::CycleAccurate)
        .run();
    assert_eq!(implicit, explicit);

    let spec = ChaosSpec::parse("seed=9,uc.drop=0.5").unwrap();
    let implicit = ClosedLoopRequest::new(model, &warm, &window, cfg.interval_insts)
        .with_faults(spec.clone())
        .run_hardened();
    let explicit = ClosedLoopRequest::new(model, &warm, &window, cfg.interval_insts)
        .with_faults(spec)
        .with_backend(BackendChoice::CycleAccurate)
        .run_hardened();
    assert_eq!(implicit.result, explicit.result);
    assert_eq!(implicit.faults, explicit.faults);
    assert_eq!(implicit.degrade, explicit.degrade);
}
