//! Bit-identity regression tests for the parallel experiment engine
//! (`psca-exec`): experiment outputs must not depend on `jobs`, and a
//! cache-hit rerun must reproduce a cold run exactly.
//!
//! These are the contract behind `repro --jobs N`: cells carry their own
//! seeds, merge in cell order, and order-sensitive series are replayed in
//! cell order, so the worker count is invisible in every output.

use psca_adapt::experiments::{chaos, table3};
use psca_adapt::{CorpusTelemetry, ExperimentConfig};
use psca_faults::ChaosSpec;
use psca_workloads::{Archetype, PhaseGenerator};

fn corpus(cfg: &ExperimentConfig) -> CorpusTelemetry {
    let mut c = cfg.clone();
    c.hdtr_apps = 8;
    CorpusTelemetry::hdtr(&c)
}

fn cfg_with_jobs(jobs: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.jobs = jobs;
    cfg
}

#[test]
fn table3_is_bit_identical_across_job_counts() {
    let serial_cfg = cfg_with_jobs(1);
    let parallel_cfg = cfg_with_jobs(4);
    let serial = table3::run(&serial_cfg, &corpus(&serial_cfg)).to_string();
    let parallel = table3::run(&parallel_cfg, &corpus(&parallel_cfg)).to_string();
    assert_eq!(serial, parallel);
}

#[test]
fn chaos_sweep_is_bit_identical_across_job_counts() {
    let spec = ChaosSpec::default_chaos();
    let serial = chaos::chaos_sweep(&cfg_with_jobs(1), &spec).to_string();
    let parallel = chaos::chaos_sweep(&cfg_with_jobs(4), &spec).to_string();
    assert_eq!(serial, parallel);
}

#[test]
fn eval_is_bit_identical_across_job_counts() {
    let mut traces = Vec::new();
    for (i, a) in [
        Archetype::DepChain,
        Archetype::ScalarIlp,
        Archetype::MemBound,
        Archetype::Balanced,
    ]
    .iter()
    .enumerate()
    {
        let mut gen = PhaseGenerator::new(a.center(), i as u64 + 50);
        traces.push(psca_adapt::collect_paired(
            &mut gen, 2_000, 24, 2_000, i as u32, "det", 1,
        ));
    }
    let corpus = CorpusTelemetry { traces };
    let run = |jobs: usize| {
        let cfg = cfg_with_jobs(jobs);
        let model = psca_adapt::zoo::train(psca_adapt::ModelKind::BestRf, &corpus, &cfg);
        psca_adapt::experiments::evaluate_model_on_corpus(&model, &corpus, &cfg)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.overall, parallel.overall);
    assert_eq!(serial.per_app.len(), parallel.per_app.len());
    for ((an, am), (bn, bm)) in serial.per_app.iter().zip(parallel.per_app.iter()) {
        assert_eq!(an, bn);
        assert_eq!(am, bm, "per-app metrics diverged for {an}");
    }
}

#[test]
fn cache_hit_rerun_matches_cold_run() {
    let dir = std::env::temp_dir().join(format!("psca-determinism-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = cfg_with_jobs(2);
    cfg.hdtr_apps = 6;
    cfg.sweep_cache = Some(dir.clone());
    let cold = CorpusTelemetry::hdtr(&cfg);
    let warm = CorpusTelemetry::hdtr(&cfg);
    let mut uncached_cfg = cfg.clone();
    uncached_cfg.sweep_cache = None;
    let uncached = CorpusTelemetry::hdtr(&uncached_cfg);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(cold.traces.len(), warm.traces.len());
    assert_eq!(cold.traces.len(), uncached.traces.len());
    for i in 0..cold.traces.len() {
        for (a, b) in [
            (&cold.traces[i], &warm.traces[i]),
            (&cold.traces[i], &uncached.traces[i]),
        ] {
            assert_eq!(a.app_name, b.app_name);
            assert_eq!(a.app_id, b.app_id);
            assert_eq!(a.insts, b.insts);
            assert_eq!(a.cycles_hi, b.cycles_hi);
            assert_eq!(a.cycles_lo, b.cycles_lo);
            assert_eq!(a.rows_hi, b.rows_hi);
            assert_eq!(a.rows_lo, b.rows_lo);
            assert_eq!(a.energy_hi, b.energy_hi);
            assert_eq!(a.energy_lo, b.energy_lo);
        }
    }
}
