//! Integration tests for the psca-serve daemon over real sockets:
//! protocol round-trips, bit-identical concurrent predictions,
//! deterministic backpressure, and drain-on-shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use psca::adapt::ModelKind;
use psca::ml::Classifier;
use psca::obs::Json;
use psca::serve::{Daemon, ModelRegistry, ServeConfig};

/// A parsed HTTP response: status code and body.
struct Response {
    status: u16,
    body: String,
}

/// Sends one raw HTTP/1.1 request and reads the whole response (the
/// daemon answers `Connection: close`, so EOF delimits it).
fn send(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Response {
    send_with_headers(addr, method, path, body, &[])
}

fn send_with_headers(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[&str],
) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: localhost\r\n");
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    if !body.is_empty() || method == "POST" {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> Response {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    Response {
        status,
        body: body.to_string(),
    }
}

/// A one-model registry on a tiny deterministic corpus (fast to train).
fn rf_registry(seed: u64) -> ModelRegistry {
    let cfg = psca::adapt::ExperimentConfig::builder()
        .seed(seed)
        .build()
        .unwrap();
    ModelRegistry::train(cfg, &[ModelKind::BestRf])
}

fn start_daemon(registry: ModelRegistry) -> Daemon {
    Daemon::start(ServeConfig::default(), registry).expect("bind loopback")
}

/// Feature rows matching the model's input dimension, deterministic.
fn probe_rows(dim: usize, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * dim + j) as f64 * 0.7).sin().abs() * 100.0)
                .collect()
        })
        .collect()
}

fn rows_json(rows: &[Vec<f64>]) -> String {
    let arr: Vec<String> = rows
        .iter()
        .map(|r| {
            let xs: Vec<String> = r.iter().map(|x| format!("{x}")).collect();
            format!("[{}]", xs.join(","))
        })
        .collect();
    format!("[{}]", arr.join(","))
}

#[test]
fn protocol_round_trips_and_typed_errors() {
    let registry = rf_registry(11);
    let dim = registry.get("best-rf").unwrap().fw_hi.input_dim().unwrap();
    let daemon = start_daemon(registry);
    let addr = daemon.local_addr();

    // Liveness and discovery.
    let r = send(addr, "GET", "/healthz", "");
    assert_eq!(r.status, 200);
    let r = send(addr, "GET", "/v1/models", "");
    assert_eq!(r.status, 200);
    let doc = Json::parse(&r.body).unwrap();
    let models = doc.get("models").and_then(Json::as_arr).unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(
        models[0].get("name").and_then(Json::as_str),
        Some("best-rf")
    );

    // A valid predict round-trip.
    let body = format!(
        r#"{{"model":"best-rf","rows":{}}}"#,
        rows_json(&probe_rows(dim, 3))
    );
    let r = send(addr, "POST", "/v1/predict", &body);
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = Json::parse(&r.body).unwrap();
    assert_eq!(doc.get("count").and_then(Json::as_u64), Some(3));

    // NDJSON negotiation.
    let r = send_with_headers(
        addr,
        "POST",
        "/v1/predict",
        &body,
        &["Accept: application/x-ndjson"],
    );
    assert_eq!(r.status, 200);
    assert_eq!(r.body.lines().count(), 3);

    // The typed 4xx taxonomy, each as a JSON error document.
    let expect_err = |method: &str, path: &str, body: &str, status: u16, code: &str| {
        let r = send(addr, method, path, body);
        assert_eq!(r.status, status, "{method} {path}: {}", r.body);
        let doc = Json::parse(&r.body).expect("error body is JSON");
        assert_eq!(doc.get("error").and_then(Json::as_str), Some(code));
    };
    expect_err("POST", "/v1/predict", "{oops", 400, "bad_json");
    expect_err(
        "POST",
        "/v1/predict",
        r#"{"model":"nope","rows":[[1]]}"#,
        404,
        "not_found",
    );
    expect_err(
        "POST",
        "/v1/predict",
        r#"{"model":"best-rf","rows":[[1,2]]}"#,
        422,
        "dimension_mismatch",
    );
    expect_err("GET", "/v1/predict", "", 405, "method_not_allowed");
    expect_err("GET", "/nowhere", "", 404, "not_found");
    expect_err("POST", "/v1/predict", "", 411, "length_required");
    expect_err(
        "POST",
        "/v1/closed-loop",
        r#"{"model":"best-rf","archetype":"warp-drive"}"#,
        422,
        "unknown_archetype",
    );

    // Oversized bodies are refused from the Content-Length alone,
    // before any body byte is read.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let oversized = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        (1 << 20) + 1
    );
    s.write_all(oversized.as_bytes()).unwrap();
    let r = read_response(&mut s);
    assert_eq!(r.status, 413);
    assert_eq!(
        Json::parse(&r.body)
            .unwrap()
            .get("error")
            .and_then(Json::as_str),
        Some("payload_too_large")
    );

    daemon.shutdown();
}

#[test]
fn closed_loop_endpoint_runs_seeded_sims() {
    let daemon = start_daemon(rf_registry(13));
    let addr = daemon.local_addr();
    let body = r#"{"model":"best-rf","archetype":"dep-chain","seed":5,"windows":4}"#;
    let a = send(addr, "POST", "/v1/closed-loop", body);
    let b = send(addr, "POST", "/v1/closed-loop", body);
    assert_eq!(a.status, 200, "{}", a.body);
    // Same seed, same spec: byte-identical summaries.
    assert_eq!(a.body, b.body);
    let doc = Json::parse(&a.body).unwrap();
    assert_eq!(doc.get("windows").and_then(Json::as_u64), Some(4));
    assert!(doc.get("instructions").and_then(Json::as_u64).unwrap() > 0);
    assert!(doc.get("degraded_fraction").is_none(), "plain run");

    // A chaos-hardened run reports the robustness block.
    let hardened = r#"{"model":"best-rf","archetype":"balanced","seed":5,"windows":4,"chaos":"uc.drop=0.5,seed=3"}"#;
    let r = send(addr, "POST", "/v1/closed-loop", hardened);
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = Json::parse(&r.body).unwrap();
    assert!(doc.get("degraded_fraction").is_some());
    assert!(doc.get("faults_injected").is_some());
    daemon.shutdown();
}

#[test]
fn concurrent_clients_see_bit_identical_predictions() {
    let registry = rf_registry(17);
    let model = registry.get("best-rf").unwrap().clone();
    let dim = model.fw_hi.input_dim().unwrap();
    let daemon = start_daemon(registry);
    let addr = daemon.local_addr();

    const CLIENTS: usize = 8;
    const ROWS: usize = 16;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let rows = probe_rows(dim, ROWS);
                let body = format!(r#"{{"model":"best-rf","rows":{}}}"#, rows_json(&rows));
                let r = send(addr, "POST", "/v1/predict", &body);
                assert_eq!(r.status, 200, "{}", r.body);
                r.body
            })
        })
        .collect();
    let bodies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Ground truth straight through the Classifier surface, no socket.
    let clf: &dyn Classifier = &model.fw_hi;
    let rows = probe_rows(dim, ROWS);
    for body in &bodies {
        let doc = Json::parse(body).unwrap();
        let results = doc.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), ROWS);
        for (row, res) in rows.iter().zip(results) {
            let got = res.get("proba").and_then(Json::as_f64).unwrap();
            let want = clf.predict_proba(row);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "served proba must be bit-identical to the direct call"
            );
            assert_eq!(res.get("gate"), Some(&Json::Bool(clf.predict(row))));
        }
    }
    daemon.shutdown();
}

#[test]
fn backpressure_answers_429_and_drains_clean() {
    let registry = rf_registry(19);
    let dim = registry.get("best-rf").unwrap().fw_hi.input_dim().unwrap();
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(config, registry).expect("bind loopback");
    let addr = daemon.local_addr();
    let body = format!(
        r#"{{"model":"best-rf","rows":{}}}"#,
        rows_json(&probe_rows(dim, 2))
    );

    // Pause the worker pool so queue occupancy is deterministic.
    daemon.hold();
    let queued: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let head = format!(
                "POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
                body.len()
            );
            s.write_all(head.as_bytes()).unwrap();
            s.write_all(body.as_bytes()).unwrap();
            s
        })
        .collect();
    // Give the accept thread a moment to enqueue both.
    std::thread::sleep(Duration::from_millis(300));

    // The queue is full: further connections bounce with 429 straight
    // from the accept thread (it answers before reading the request, so
    // the client just reads).
    let mut rejected = TcpStream::connect(addr).unwrap();
    rejected
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let r = read_response(&mut rejected);
    assert_eq!(r.status, 429, "{}", r.body);
    let doc = Json::parse(&r.body).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("queue_full"));

    // Releasing the pool serves everything that queued — nothing below
    // the bound is dropped.
    daemon.release();
    for mut s in queued {
        let r = read_response(&mut s);
        assert_eq!(r.status, 200, "{}", r.body);
    }
    daemon.quiesce();
    let r = send(addr, "POST", "/v1/predict", &body);
    assert_eq!(r.status, 200, "queue drains clean after backpressure");
    daemon.shutdown();
}

#[test]
fn shutdown_drains_queued_requests() {
    let registry = rf_registry(23);
    let dim = registry.get("best-rf").unwrap().fw_hi.input_dim().unwrap();
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(config, registry).expect("bind loopback");
    let addr = daemon.local_addr();
    let body = format!(
        r#"{{"model":"best-rf","rows":{}}}"#,
        rows_json(&probe_rows(dim, 1))
    );

    daemon.hold();
    let queued: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let head = format!(
                "POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
                body.len()
            );
            s.write_all(head.as_bytes()).unwrap();
            s.write_all(body.as_bytes()).unwrap();
            s
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));

    // Shutdown overrides the hold: every queued request is answered
    // before the threads exit.
    daemon.shutdown();
    for mut s in queued {
        let r = read_response(&mut s);
        assert_eq!(r.status, 200, "queued request answered during drain");
    }
    // And the daemon is really gone.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

#[test]
fn stalled_clients_get_typed_408_not_a_pinned_worker() {
    let registry = rf_registry(23);
    let config = ServeConfig {
        read_timeout_ms: 200,
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(config, registry).expect("bind loopback");
    let addr = daemon.local_addr();

    // Stall mid-head: the request line goes out, the terminating blank
    // line never does.
    let mut head_staller = TcpStream::connect(addr).unwrap();
    head_staller
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    head_staller
        .write_all(b"POST /v1/predict HTTP/1.1\r\nHost: x\r\n")
        .unwrap();
    let r = read_response(&mut head_staller);
    assert_eq!(r.status, 408, "head staller: {}", r.body);
    assert!(r.body.contains("request_timeout"), "body: {}", r.body);

    // Stall mid-body: full head promising bytes that never arrive.
    let mut body_staller = TcpStream::connect(addr).unwrap();
    body_staller
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    body_staller
        .write_all(b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 64\r\n\r\n{\"model\":")
        .unwrap();
    let r = read_response(&mut body_staller);
    assert_eq!(r.status, 408, "body staller: {}", r.body);
    assert!(r.body.contains("request_timeout"), "body: {}", r.body);

    // The workers were never pinned: a healthy request still answers.
    let r = send(addr, "GET", "/healthz", "");
    assert_eq!(r.status, 200);
    daemon.shutdown();
}
