//! End-to-end observability tests: trace-context propagation over real
//! sockets into the Perfetto artifact, bit-identity of served results
//! with tracing on vs off, readiness vs liveness, the SLO endpoint and
//! burn-rate math, the flight recorder's postmortem dumps, and the JSONL
//! access log.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use psca::adapt::ModelKind;
use psca::obs::{Json, SloEngine, SloSpec, TraceCtx};
use psca::serve::{Daemon, ModelRegistry, ServeConfig};

/// A parsed HTTP response: status, raw head (for header assertions), body.
struct Response {
    status: u16,
    head: String,
    body: String,
}

impl Response {
    /// The value of `name` in the response head, if present.
    fn header(&self, name: &str) -> Option<String> {
        self.head.lines().find_map(|line| {
            let (k, v) = line.split_once(':')?;
            k.trim()
                .eq_ignore_ascii_case(name)
                .then(|| v.trim().to_string())
        })
    }
}

fn send(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Response {
    send_with_headers(addr, method, path, body, &[])
}

fn send_with_headers(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[&str],
) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: localhost\r\n");
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    if !body.is_empty() || method == "POST" {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    Response {
        status,
        head: head.to_string(),
        body: body.to_string(),
    }
}

fn rf_registry(seed: u64) -> ModelRegistry {
    let cfg = psca::adapt::ExperimentConfig::builder()
        .seed(seed)
        .build()
        .unwrap();
    ModelRegistry::train(cfg, &[ModelKind::BestRf])
}

fn probe_rows(dim: usize, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * dim + j) as f64 * 0.7).sin().abs() * 100.0)
                .collect()
        })
        .collect()
}

fn rows_json(rows: &[Vec<f64>]) -> String {
    let arr: Vec<String> = rows
        .iter()
        .map(|r| {
            let xs: Vec<String> = r.iter().map(|x| format!("{x}")).collect();
            format!("[{}]", xs.join(","))
        })
        .collect();
    format!("[{}]", arr.join(","))
}

#[test]
fn readyz_distinguishes_readiness_from_liveness() {
    // A daemon with no models loaded is *live* (the process serves HTTP)
    // but not *ready* (it cannot answer predictions yet).
    let cfg = psca::adapt::ExperimentConfig::builder()
        .seed(31)
        .build()
        .unwrap();
    let daemon = Daemon::start(ServeConfig::default(), ModelRegistry::new(cfg)).expect("bind");
    let addr = daemon.local_addr();
    assert_eq!(send(addr, "GET", "/healthz", "").status, 200);
    let r = send(addr, "GET", "/readyz", "");
    assert_eq!(r.status, 503, "{}", r.body);
    assert_eq!(
        Json::parse(&r.body)
            .unwrap()
            .get("error")
            .and_then(Json::as_str),
        Some("not_ready")
    );
    daemon.shutdown();

    // With a loaded registry and an accepting pool the daemon is ready.
    let daemon = Daemon::start(ServeConfig::default(), rf_registry(31)).expect("bind");
    let addr = daemon.local_addr();
    assert_eq!(send(addr, "GET", "/healthz", "").status, 200);
    let r = send(addr, "GET", "/readyz", "");
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = Json::parse(&r.body).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ready"));

    // Wrong method gets the typed 405, not a 404.
    assert_eq!(send(addr, "POST", "/readyz", "").status, 405);
    daemon.shutdown();
}

#[test]
fn slo_endpoint_reports_spec_and_live_status() {
    let registry = rf_registry(37);
    let dim = registry.get("best-rf").unwrap().fw_hi.input_dim().unwrap();
    let daemon = Daemon::start(ServeConfig::default(), registry).expect("bind");
    let addr = daemon.local_addr();
    let body = format!(
        r#"{{"model":"best-rf","rows":{}}}"#,
        rows_json(&probe_rows(dim, 1))
    );
    assert_eq!(send(addr, "POST", "/v1/predict", &body).status, 200);

    let r = send(addr, "GET", "/v1/slo", "");
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = Json::parse(&r.body).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert!(doc.get("window_requests").and_then(Json::as_u64).unwrap() >= 1);
    let spec = doc.get("spec").expect("spec block");
    assert_eq!(spec.get("availability").and_then(Json::as_f64), Some(0.999));
    daemon.shutdown();

    // SLO disabled: the endpoint says so instead of 404ing.
    let daemon = Daemon::start(
        ServeConfig {
            slo: None,
            ..ServeConfig::default()
        },
        rf_registry(37),
    )
    .expect("bind");
    let r = send(daemon.local_addr(), "GET", "/v1/slo", "");
    assert_eq!(r.status, 200);
    assert_eq!(
        Json::parse(&r.body)
            .unwrap()
            .get("enabled")
            .and_then(Json::as_bool),
        Some(false)
    );
    daemon.shutdown();
}

/// The tentpole acceptance test: one traced request renders as a single
/// Perfetto tree (ingress span → sim windows → sim intervals, all
/// carrying the same trace id), the response echoes the `traceparent`,
/// the flight recorder and latency exemplar carry the same id — and
/// turning tracing on changes no served byte.
#[test]
fn traced_request_is_one_perfetto_tree_and_stays_bit_identical() {
    let registry = rf_registry(41);
    let dim = registry.get("best-rf").unwrap().fw_hi.input_dim().unwrap();
    let daemon = Daemon::start(ServeConfig::default(), registry).expect("bind");
    let addr = daemon.local_addr();
    let predict_body = format!(
        r#"{{"model":"best-rf","rows":{}}}"#,
        rows_json(&probe_rows(dim, 4))
    );
    let loop_body = r#"{"model":"best-rf","archetype":"dep-chain","seed":5,"windows":4}"#;

    // The same client-minted traceparent rides on every request, so the
    // ONLY variable between the two halves is the trace recorder.
    let client_ctx = TraceCtx {
        trace_id: 0xABAD_1DEA_0000_0000_0000_0000_5EED_5EED,
        span_id: 0x1234_5678_9ABC_DEF0,
    };
    let tp_header = format!("traceparent: {}", client_ctx.to_traceparent());

    // Baseline with tracing OFF.
    let predict_off = send_with_headers(addr, "POST", "/v1/predict", &predict_body, &[&tp_header]);
    let loop_off = send_with_headers(addr, "POST", "/v1/closed-loop", loop_body, &[&tp_header]);
    assert_eq!(predict_off.status, 200, "{}", predict_off.body);
    assert_eq!(loop_off.status, 200, "{}", loop_off.body);

    // Tracing ON.
    let trace_path =
        std::env::temp_dir().join(format!("psca_obs_e2e_trace_{}.json", std::process::id()));
    assert!(
        psca::obs::trace::enable(&trace_path),
        "trace recorder already active (another test holds it?)"
    );
    let predict_on = send_with_headers(addr, "POST", "/v1/predict", &predict_body, &[&tp_header]);
    let loop_on = send_with_headers(addr, "POST", "/v1/closed-loop", loop_body, &[&tp_header]);
    let trace_hex = client_ctx.trace_id_hex();

    // Bit-identity: tracing and trace-context propagation change nothing.
    assert_eq!(predict_on.status, 200);
    assert_eq!(
        predict_on.body, predict_off.body,
        "predict must be bit-identical with tracing on"
    );
    assert_eq!(
        loop_on.body, loop_off.body,
        "closed-loop must be bit-identical with tracing on"
    );

    // The response echoes our trace id (fresh server-hop span id).
    let echoed = predict_on.header("traceparent").expect("traceparent echo");
    let echoed_ctx = TraceCtx::parse_traceparent(&echoed).expect("valid echoed header");
    assert_eq!(echoed_ctx.trace_id, client_ctx.trace_id);
    assert_ne!(echoed_ctx.span_id, client_ctx.span_id, "server hop span");

    // The flight recorder joins on the same trace id.
    let r = send(addr, "GET", "/v1/debug/requests", "");
    assert_eq!(r.status, 200);
    let doc = Json::parse(&r.body).unwrap();
    let recent = doc.get("requests").and_then(Json::as_arr).unwrap();
    assert!(
        recent.iter().any(|rec| {
            rec.get("trace_id").and_then(Json::as_str) == Some(trace_hex.as_str())
                && rec.get("endpoint").and_then(Json::as_str) == Some("closed_loop")
        }),
        "flight recorder must hold the traced closed-loop request"
    );

    // The latency histogram exemplar links /metrics back to the trace.
    let metrics = send(addr, "GET", "/metrics", "");
    assert!(
        metrics
            .body
            .contains(&format!("_exemplar{{trace_id=\"{trace_hex}\"}}")),
        "exemplar with our trace id missing from /metrics"
    );

    daemon.shutdown();
    let written = psca::obs::trace::finish().expect("trace written");
    let text = std::fs::read_to_string(&written).unwrap();
    let _ = std::fs::remove_file(&written);
    let events = Json::parse(&text).unwrap();
    let events = events.as_arr().expect("trace file is a JSON array");

    // Every span of the traced request carries the same trace id, and the
    // tree covers ingress → closed-loop windows → sim intervals.
    let ours: Vec<&Json> = events
        .iter()
        .filter(|ev| {
            ev.get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Json::as_str)
                == Some(trace_hex.as_str())
        })
        .collect();
    let names: std::collections::BTreeSet<&str> = ours
        .iter()
        .filter_map(|ev| ev.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        names.iter().any(|n| n.contains("serve.request")),
        "ingress span missing; traced names: {names:?}"
    );
    assert!(
        names.contains("sim.window"),
        "closed-loop window spans missing; traced names: {names:?}"
    );
    assert!(
        names.contains("cpu.sim.interval"),
        "sim interval spans missing; traced names: {names:?}"
    );
    // Both served requests appear: predict + closed-loop ingress spans
    // (children nest dot-joined under them, so match the exact name).
    let ingress = ours
        .iter()
        .filter(|ev| ev.get("name").and_then(Json::as_str) == Some("serve.request"))
        .count();
    assert_eq!(ingress, 2, "one ingress span per traced request");
}

#[test]
fn flight_recorder_dumps_postmortem_on_5xx() {
    let chaos = psca::faults::ChaosSpec::parse("uc.drop=1.0,seed=3").unwrap();
    let daemon = Daemon::start(
        ServeConfig {
            chaos: Some(chaos),
            ..ServeConfig::default()
        },
        rf_registry(43),
    )
    .expect("bind");
    let addr = daemon.local_addr();

    let postmortems = || -> usize {
        std::fs::read_dir("target/obs")
            .map(|dir| {
                dir.filter_map(Result::ok)
                    .filter(|e| {
                        e.file_name()
                            .to_string_lossy()
                            .starts_with("postmortem-http-5xx-")
                    })
                    .count()
            })
            .unwrap_or(0)
    };
    // Dump sequence numbers restart per process: clear stale artifacts so
    // a rerun's dump can't land on an old filename and hide itself.
    if let Ok(dir) = std::fs::read_dir("target/obs") {
        for e in dir.filter_map(Result::ok) {
            if e.file_name()
                .to_string_lossy()
                .starts_with("postmortem-http-5xx-")
            {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
    let before = postmortems();

    let ctx = TraceCtx {
        trace_id: 0xDEAD_BEEF,
        span_id: 0xFEED,
    };
    let tp_header = format!("traceparent: {}", ctx.to_traceparent());
    let r = send_with_headers(
        addr,
        "POST",
        "/v1/predict",
        r#"{"model":"best-rf","rows":[[1]]}"#,
        &[&tp_header],
    );
    assert_eq!(r.status, 503, "chaos drops every prediction: {}", r.body);
    assert_eq!(
        Json::parse(&r.body)
            .unwrap()
            .get("error")
            .and_then(Json::as_str),
        Some("chaos_dropped")
    );

    // The 5xx triggered a postmortem dump. The daemon writes it *after*
    // responding (bookkeeping never holds the client), so wait for it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while postmortems() <= before && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        postmortems() > before,
        "no postmortem-http-5xx-*.jsonl appeared in target/obs"
    );
    // ...and the debug endpoint shows the request with its trace id and
    // error class.
    let doc = Json::parse(&send(addr, "GET", "/v1/debug/requests", "").body).unwrap();
    let recent = doc.get("requests").and_then(Json::as_arr).unwrap();
    assert!(recent.iter().any(|rec| {
        rec.get("trace_id").and_then(Json::as_str) == Some(ctx.trace_id_hex().as_str())
            && rec.get("error_class").and_then(Json::as_str) == Some("chaos_dropped")
            && rec.get("status").and_then(Json::as_u64) == Some(503)
    }));
    daemon.shutdown();
}

#[test]
fn access_log_lines_join_on_trace_id() {
    let log_path =
        std::env::temp_dir().join(format!("psca_access_log_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let registry = rf_registry(47);
    let dim = registry.get("best-rf").unwrap().fw_hi.input_dim().unwrap();
    let daemon = Daemon::start(
        ServeConfig {
            access_log: Some(log_path.clone()),
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("bind");
    let addr = daemon.local_addr();

    let ctx = TraceCtx {
        trace_id: 0xACCE_55ED,
        span_id: 0x10,
    };
    let tp_header = format!("traceparent: {}", ctx.to_traceparent());
    let body = format!(
        r#"{{"model":"best-rf","rows":{}}}"#,
        rows_json(&probe_rows(dim, 1))
    );
    let r = send_with_headers(addr, "POST", "/v1/predict", &body, &[&tp_header]);
    assert_eq!(r.status, 200, "{}", r.body);
    daemon.shutdown();

    let text = std::fs::read_to_string(&log_path).expect("access log written");
    let _ = std::fs::remove_file(&log_path);
    let line = text
        .lines()
        .find(|l| l.contains(&ctx.trace_id_hex()))
        .expect("access line for the traced request");
    let doc = Json::parse(line).expect("access line is JSON");
    assert_eq!(
        doc.get("event").and_then(Json::as_str),
        Some("serve.access")
    );
    let fields = doc.get("fields").expect("fields object");
    assert_eq!(
        fields.get("trace_id").and_then(Json::as_str),
        Some(ctx.trace_id_hex().as_str())
    );
    assert_eq!(fields.get("method").and_then(Json::as_str), Some("POST"));
    assert_eq!(
        fields.get("path").and_then(Json::as_str),
        Some("/v1/predict")
    );
    assert_eq!(fields.get("status").and_then(Json::as_u64), Some(200));
    assert!(fields.get("latency_us").and_then(Json::as_u64).is_some());
}

// ---------------------------------------------------------------------
// psca-prof: the hierarchical self-profiler (docs/PROFILING.md).
//
// The profiler's global state (enabled flag + merged profile) is shared
// by every test in this binary, so tests that flip it or drain it
// serialize on PROF_LOCK. Tests that don't touch the profiler may run
// concurrently: the profiler observing their spans is exactly the
// situation the bit-identity guarantee covers.
// ---------------------------------------------------------------------

static PROF_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock_prof() -> std::sync::MutexGuard<'static, ()> {
    PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Profiling on vs off must not change a single byte of experiment
/// output — here `repro table3`'s stdout (training opens `ml.*.fit`
/// spans, so the profiled run demonstrably captured stacks while
/// producing identical results).
#[test]
fn profiler_keeps_table3_bit_identical() {
    use psca::adapt::{experiments::table3, CorpusTelemetry, ExperimentConfig};
    let mut cfg = ExperimentConfig::quick();
    cfg.hdtr_apps = 8;
    cfg.jobs = 2;
    let corpus = CorpusTelemetry::hdtr(&cfg);
    let _g = lock_prof();
    psca::obs::prof::set_enabled(false);
    let off = table3::run(&cfg, &corpus).to_string();
    psca::obs::prof::set_enabled(true);
    let _ = psca::obs::prof::drain();
    let on = table3::run(&cfg, &corpus).to_string();
    let profile = psca::obs::prof::drain();
    psca::obs::prof::set_enabled(false);
    assert_eq!(off, on, "profiling must not change table3 output");
    assert!(
        profile
            .nodes()
            .any(|(stack, _)| stack.contains("ml.") && stack.contains(".fit")),
        "profiled table3 run must capture training spans; got {} stacks",
        profile.len()
    );
}

/// Served bytes stay bit-identical with profiling on, and
/// `GET /v1/profile` scrapes (and consumes) the captured stacks.
#[test]
fn profiler_keeps_served_predictions_bit_identical_and_scrapes() {
    let registry = rf_registry(53);
    let dim = registry.get("best-rf").unwrap().fw_hi.input_dim().unwrap();
    let daemon = Daemon::start(ServeConfig::default(), registry).expect("bind");
    let addr = daemon.local_addr();
    let body = format!(
        r#"{{"model":"best-rf","rows":{}}}"#,
        rows_json(&probe_rows(dim, 6))
    );

    let _g = lock_prof();
    psca::obs::prof::set_enabled(false);
    let scrape = send(addr, "GET", "/v1/profile", "");
    assert_eq!(scrape.status, 200, "{}", scrape.body);
    assert_eq!(
        Json::parse(&scrape.body)
            .unwrap()
            .get("enabled")
            .and_then(Json::as_bool),
        Some(false)
    );

    let off = send(addr, "POST", "/v1/predict", &body);
    assert_eq!(off.status, 200, "{}", off.body);

    psca::obs::prof::set_enabled(true);
    let _ = psca::obs::prof::drain();
    let on = send(addr, "POST", "/v1/predict", &body);
    assert_eq!(on.status, 200);
    assert_eq!(
        off.body, on.body,
        "served predictions must be bit-identical with profiling on"
    );

    // The ingress span lands in the global profile when the worker
    // finishes bookkeeping, which may trail the response: poll the
    // scrape (each read drains, so a late span is caught by a later
    // scrape) until it shows up.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let scrape = send(addr, "GET", "/v1/profile", "");
        assert_eq!(scrape.status, 200);
        let doc = Json::parse(&scrape.body).unwrap();
        assert_eq!(doc.get("enabled").and_then(Json::as_bool), Some(true));
        let seen = doc.get("top").and_then(Json::as_arr).is_some_and(|top| {
            top.iter().any(|n| {
                n.get("stack")
                    .and_then(Json::as_str)
                    .is_some_and(|s| s.contains("serve.request"))
            })
        });
        if seen {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no serve.request stack in /v1/profile; last scrape: {}",
            scrape.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    psca::obs::prof::set_enabled(false);
    daemon.shutdown();
}

/// The per-cell profile shards merge commutatively, so the call tree
/// (stacks and call counts — timings are wall clock and naturally vary)
/// is invariant under the worker count, exactly like series shards.
#[test]
fn profile_shard_merge_is_job_count_invariant() {
    let run = |jobs: usize| -> Vec<(String, u64)> {
        psca::obs::prof::set_enabled(true);
        let _ = psca::obs::prof::drain();
        let cells: Vec<u64> = (0..12).collect();
        let _ = psca::exec::Sweep::new("proftest")
            .jobs(jobs)
            .run(cells, |&c| {
                let outer = psca::obs::SpanTimer::start("proftest.outer");
                {
                    let _inner = psca::obs::SpanTimer::start("proftest.inner");
                    std::hint::black_box(c.wrapping_mul(c));
                }
                drop(outer);
                c
            });
        psca::obs::prof::drain()
            .nodes()
            .filter(|(stack, _)| stack.starts_with("proftest"))
            .map(|(stack, stat)| (stack.to_string(), stat.calls))
            .collect()
    };
    let _g = lock_prof();
    let serial = run(1);
    let parallel = run(4);
    psca::obs::prof::set_enabled(false);
    assert_eq!(
        serial, parallel,
        "profile stacks and call counts must not depend on jobs"
    );
    assert_eq!(
        serial,
        vec![
            ("proftest.outer".to_string(), 12),
            ("proftest.outer;proftest.inner".to_string(), 12),
        ]
    );
}

#[test]
fn folded_parser_rejects_malformed_lines() {
    use psca::obs::Profile;
    assert!(Profile::parse_folded("a;b 12\nc 3\n").is_some());
    assert!(Profile::parse_folded("novalue\n").is_none());
    assert!(Profile::parse_folded("a;b twelve\n").is_none());
    assert!(Profile::parse_folded(" 12\n").is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The collapsed-stack grammar round-trips: rendering a profile and
    /// parsing it back preserves every stack's self time, and re-rendering
    /// is byte-identical (only self time survives folding by design).
    #[test]
    fn folded_roundtrip_is_lossless_for_self_time(
        entries in prop::collection::vec(
            (0usize..6, 0usize..6, 1usize..4, 0u64..1_000_000),
            1..12,
        )
    ) {
        // Frame names exercise the grammar's corners: dots inside names,
        // digits, underscores (`;` and spaces are what the format reserves).
        const NAMES: [&str; 6] =
            ["serve.request", "sim.window", "ml.rf.fit", "a", "x_1", "repro.fig8"];
        let mut p = psca::obs::Profile::default();
        for &(first, second, depth, self_us) in &entries {
            let mut stack = NAMES[first].to_string();
            for d in 1..depth {
                stack.push(';');
                stack.push_str(NAMES[(second + d) % NAMES.len()]);
            }
            p.record(&stack, self_us * 1_000, self_us * 1_000);
        }
        let folded = p.folded();
        let parsed = psca::obs::Profile::parse_folded(&folded).expect("round-trip parse");
        prop_assert_eq!(parsed.folded(), folded);
        prop_assert_eq!(parsed.len(), p.len());
        for (stack, stat) in p.nodes() {
            prop_assert_eq!(parsed.node(stack).expect("stack survives").self_ns, stat.self_ns);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Burn rate is exactly (error fraction) / (error budget), on both
    /// windows, and the alert fires iff it crosses the configured
    /// threshold.
    #[test]
    fn slo_burn_rate_matches_error_fraction(
        requests in 1u64..500,
        errors_frac in 0.0f64..1.0,
        availability in 0.9f64..0.9999,
        fast_burn in 1.0f64..20.0,
    ) {
        let errors = ((requests as f64) * errors_frac) as u64;
        let spec = SloSpec {
            availability,
            fast_burn,
            // Effectively mute the other alert dimensions.
            p99_latency_us: u64::MAX,
            slow_burn: f64::INFINITY,
            ..SloSpec::default()
        };
        let budget = spec.error_budget();
        let mut engine = SloEngine::new(spec);
        for i in 0..requests {
            engine.observe(1_000, 10, i < errors);
        }
        let status = engine.status(1_000);
        prop_assert_eq!(status.window_requests, requests);
        prop_assert_eq!(status.window_errors, errors);
        let expected = (errors as f64 / requests as f64) / budget;
        prop_assert!((status.fast_burn_rate - expected).abs() <= 1e-9 * expected.max(1.0));
        let avail = 1.0 - errors as f64 / requests as f64;
        prop_assert!((status.availability.unwrap() - avail).abs() < 1e-12);
        prop_assert_eq!(status.ok(), status.fast_burn_rate < fast_burn,
            "alert iff fast burn {} >= threshold {}", status.fast_burn_rate, fast_burn);
    }

    /// Observations older than the long window never contribute to either
    /// burn rate once the ring has been swept past them.
    #[test]
    fn slo_old_errors_expire(errors in 1u64..50, gap_s in 601u64..2000) {
        let mut engine = SloEngine::new(SloSpec::default());
        for _ in 0..errors {
            engine.observe(1_000, 10, true);
        }
        let later_ms = 1_000 + gap_s * 1_000;
        engine.observe(later_ms, 10, false);
        let status = engine.status(later_ms);
        prop_assert_eq!(status.window_errors, 0);
        prop_assert!(status.fast_burn_rate == 0.0);
        prop_assert!(status.slow_burn_rate == 0.0);
    }
}
