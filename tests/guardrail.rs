//! Integration tests of the §3.1 fail-safe guardrail inside the
//! evaluation loop: it must mask even a pathologically bad model's SLA
//! violations, at a PPW cost.

use psca::adapt::experiments::evaluate_with_guardrail;
use psca::adapt::guardrail::GuardrailConfig;
use psca::adapt::{collect_paired, zoo, CorpusTelemetry, ExperimentConfig, ModelKind};
use psca::workloads::{Archetype, PhaseGenerator};

fn corpus(archetypes: &[Archetype], seed: u64) -> CorpusTelemetry {
    let traces = archetypes
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let mut gen = PhaseGenerator::new(a.center(), seed + i as u64);
            collect_paired(&mut gen, 2_000, 64, 2_000, i as u32, &format!("{a:?}"), 1)
        })
        .collect();
    CorpusTelemetry { traces }
}

/// Trains a model ONLY on gateable workloads — it will happily gate
/// everything, creating systematic violations on wide-ILP code.
fn blind_model(cfg: &ExperimentConfig) -> psca::adapt::TrainedAdaptModel {
    let gateable_only = corpus(
        &[
            Archetype::DepChain,
            Archetype::MemBound,
            Archetype::PointerChase,
            Archetype::StreamFpChain,
        ],
        10,
    );
    zoo::train(ModelKind::BestRf, &gateable_only, cfg)
}

#[test]
fn guardrail_masks_a_blind_models_violations() {
    let cfg = ExperimentConfig::quick();
    let model = blind_model(&cfg);
    // Confront it with wide-ILP code it has never seen.
    let hostile = corpus(&[Archetype::ScalarIlp, Archetype::SimdKernel], 77);
    let without = evaluate_with_guardrail(&model, &hostile, &cfg, None).overall;
    let with =
        evaluate_with_guardrail(&model, &hostile, &cfg, Some(GuardrailConfig::default())).overall;
    assert!(
        without.rsv > 0.2,
        "the blind model should violate heavily: rsv {}",
        without.rsv
    );
    assert!(
        with.rsv < without.rsv,
        "guardrail must reduce RSV: {} -> {}",
        without.rsv,
        with.rsv
    );
    assert!(
        with.avg_perf >= without.avg_perf,
        "guardrail must not reduce performance"
    );
}

#[test]
fn guardrail_is_nearly_free_for_a_good_model() {
    let cfg = ExperimentConfig::quick();
    let train_corpus = corpus(
        &[
            Archetype::DepChain,
            Archetype::ScalarIlp,
            Archetype::MemBound,
            Archetype::Balanced,
        ],
        20,
    );
    let model = zoo::train(ModelKind::BestRf, &train_corpus, &cfg);
    let without = evaluate_with_guardrail(&model, &train_corpus, &cfg, None).overall;
    let with = evaluate_with_guardrail(
        &model,
        &train_corpus,
        &cfg,
        Some(GuardrailConfig::default()),
    )
    .overall;
    // A well-trained model rarely trips the guardrail, so PPW should not
    // collapse (§3.1: violations are minimized so guardrails can be
    // permissive).
    assert!(
        with.ppw_gain > 0.5 * without.ppw_gain,
        "guardrail cost too high: {} -> {}",
        without.ppw_gain,
        with.ppw_gain
    );
}
