//! End-to-end firmware deployment: a trained model survives the full
//! §3.2 delivery path — encode to a firmware image, ship the bytes,
//! decode on the "CPU", and drive the closed loop identically.

use psca::adapt::collect_paired;
use psca::adapt::{
    record_trace, zoo, ClosedLoopRequest, CorpusTelemetry, ExperimentConfig, ModelKind,
};
use psca::uc::image;
use psca::workloads::{Archetype, PhaseGenerator};

fn corpus() -> CorpusTelemetry {
    let traces = [
        Archetype::DepChain,
        Archetype::ScalarIlp,
        Archetype::MemBound,
        Archetype::Balanced,
    ]
    .iter()
    .enumerate()
    .map(|(i, a)| {
        let mut gen = PhaseGenerator::new(a.center(), 400 + i as u64);
        collect_paired(&mut gen, 2_000, 24, 2_000, i as u32, "t", 1)
    })
    .collect();
    CorpusTelemetry { traces }
}

#[test]
fn shipped_firmware_drives_identical_gating() {
    let cfg = ExperimentConfig::quick();
    let mut model = zoo::train(ModelKind::BestRf, &corpus(), &cfg);

    // Ship both per-mode predictors as firmware images.
    let img_hi = image::encode(&model.fw_hi).expect("deployable");
    let img_lo = image::encode(&model.fw_lo).expect("deployable");
    let original = model.clone();
    model.fw_hi = image::decode(&img_hi).expect("valid image");
    model.fw_lo = image::decode(&img_lo).expect("valid image");

    // The decoded firmware must reproduce the original closed loop
    // decision-for-decision on a fresh workload.
    let mut gen = PhaseGenerator::new(Archetype::Balanced.center(), 777);
    let (warm, window) = record_trace(&mut gen, 2_000, 64_000);
    let a = ClosedLoopRequest::new(&original, &warm, &window, cfg.interval_insts).run();
    let b = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();
    assert_eq!(a.predictions, b.predictions);
    assert_eq!(a.modes, b.modes);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.energy.to_bits(), b.energy.to_bits());
}

#[test]
fn firmware_images_are_compact() {
    let cfg = ExperimentConfig::quick();
    let model = zoo::train(ModelKind::BestRf, &corpus(), &cfg);
    let img = image::encode(&model.fw_lo).expect("deployable");
    // A firmware update should be kilobytes, not megabytes: trees are
    // stored sparsely in the image even though the µC budget accounting
    // uses the padded-array footprint.
    assert!(
        img.len() < 64 * 1024,
        "firmware image unexpectedly large: {} bytes",
        img.len()
    );
    assert!(img.len() > 64, "image suspiciously small");
}

#[test]
fn charstar_firmware_also_roundtrips() {
    let cfg = ExperimentConfig::quick();
    let model = zoo::train(ModelKind::Charstar, &corpus(), &cfg);
    let img = image::encode(&model.fw_lo).expect("MLPs are deployable");
    let back = image::decode(&img).expect("valid");
    // Spot-check decision agreement over a grid of inputs.
    for i in 0..200 {
        let x: Vec<f64> = (0..8)
            .map(|j| ((i * 7 + j * 13) % 19) as f64 / 19.0 - 0.5)
            .collect();
        assert_eq!(model.fw_lo.predict(&x).unwrap(), back.predict(&x).unwrap());
    }
}
