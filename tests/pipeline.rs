//! Cross-crate integration tests: the full data path from workload
//! synthesis through simulation, telemetry, training, and deployment.

use psca::adapt::experiments::evaluate_model_on_corpus;
use psca::adapt::{
    collect_paired, record_trace, zoo, ClosedLoopRequest, CorpusTelemetry, ExperimentConfig,
    ModelKind, Sla,
};
use psca::cpu::Mode;
use psca::workloads::{Archetype, PhaseGenerator};

fn small_corpus(seed: u64) -> CorpusTelemetry {
    let archetypes = [
        Archetype::DepChain,
        Archetype::ScalarIlp,
        Archetype::MemBound,
        Archetype::Balanced,
        Archetype::Branchy,
        Archetype::SimdKernel,
    ];
    let traces = archetypes
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let mut gen = PhaseGenerator::new(a.center(), seed + i as u64);
            collect_paired(&mut gen, 2_000, 24, 2_000, i as u32, &format!("{a:?}"), 1)
        })
        .collect();
    CorpusTelemetry { traces }
}

#[test]
fn end_to_end_training_and_deployment() {
    let cfg = ExperimentConfig::quick();
    let corpus = small_corpus(100);
    let model = zoo::train(ModelKind::BestRf, &corpus, &cfg);
    // Deploy on a fresh workload.
    let mut gen = PhaseGenerator::new(Archetype::DepChain.center(), 999);
    let (warm, window) = record_trace(&mut gen, 2_000, 48_000);
    let result = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();
    assert_eq!(result.instructions, 48_000);
    assert!(result.low_power_residency > 0.3, "serial code should gate");
}

#[test]
fn closed_loop_and_emulation_agree_on_residency() {
    // The instruction-level closed loop (controller) and the paired-mode
    // emulation (eval) must tell the same story on a stationary workload.
    let cfg = ExperimentConfig::quick();
    let corpus = small_corpus(200);
    let model = zoo::train(ModelKind::BestRf, &corpus, &cfg);

    let archetype = Archetype::MemBound;
    // Real closed loop.
    let mut gen = PhaseGenerator::new(archetype.center(), 1234);
    let (warm, window) = record_trace(&mut gen, 2_000, 64_000);
    let real = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();
    // Emulated closed loop over paired telemetry of the same generator.
    let mut gen2 = PhaseGenerator::new(archetype.center(), 1234);
    let paired = collect_paired(&mut gen2, 2_000, 32, 2_000, 0, "probe", 1);
    let emu = evaluate_model_on_corpus(
        &model,
        &CorpusTelemetry {
            traces: vec![paired],
        },
        &cfg,
    );
    let delta = (real.low_power_residency - emu.overall.residency).abs();
    assert!(
        delta < 0.25,
        "closed loop {} vs emulation {}",
        real.low_power_residency,
        emu.overall.residency
    );
}

#[test]
fn oracle_labels_match_between_modes_and_sla() {
    let sla = Sla::paper_default();
    let mut gen = PhaseGenerator::new(Archetype::ScalarIlp.center(), 77);
    let paired = collect_paired(&mut gen, 2_000, 16, 2_000, 0, "probe", 1);
    let labels = paired.labels(&sla);
    assert_eq!(labels.len(), paired.len());
    // Relaxing the SLA can only add gating opportunities.
    let relaxed = paired.labels(&sla.with_p_sla(0.5));
    for (strict, loose) in labels.iter().zip(&relaxed) {
        assert!(loose >= strict);
    }
}

#[test]
fn firmware_models_fit_microcontroller_budgets() {
    let cfg = ExperimentConfig::quick();
    let corpus = small_corpus(300);
    for kind in [ModelKind::BestRf, ModelKind::BestMlp, ModelKind::Charstar] {
        let model = zoo::train(kind, &corpus, &cfg);
        assert!(
            zoo::fits_budget(&model),
            "{kind:?} exceeds its Table 3 budget: {} ops at granularity {}",
            model.ops_per_prediction,
            model.granularity
        );
    }
}

#[test]
fn telemetry_modes_differ_where_it_matters() {
    // High-performance and low-power telemetry of the same trace must
    // agree on mode-independent structure (miss counts per instruction)
    // while disagreeing on pipeline-visible behaviour.
    use psca::telemetry::Event;
    let mut gen = PhaseGenerator::new(Archetype::ScalarIlp.center(), 5);
    let paired = collect_paired(&mut gen, 4_000, 8, 4_000, 0, "probe", 1);
    for t in 0..paired.len() {
        let hi_ipc = paired.ipc_hi[t];
        let lo_ipc = paired.ipc_lo[t];
        assert!(hi_ipc >= lo_ipc * 0.9, "hi should not be slower");
        // Mispredicts per instruction are mode-independent here.
        let hi_mpki = paired.rows_hi[t][Event::BranchMispredicts.index()] / hi_ipc;
        let lo_mpki = paired.rows_lo[t][Event::BranchMispredicts.index()] / lo_ipc;
        assert!(
            (hi_mpki - lo_mpki).abs() < 0.01,
            "t={t}: {hi_mpki} vs {lo_mpki}"
        );
    }
}

#[test]
fn adaptive_cpu_never_catastrophically_underperforms() {
    // Even with an imperfect model, average performance must stay within
    // the ballpark the SLA implies (quick config, training-set workloads).
    let cfg = ExperimentConfig::quick();
    let corpus = small_corpus(400);
    let model = zoo::train(ModelKind::BestRf, &corpus, &cfg);
    let eval = evaluate_model_on_corpus(&model, &corpus, &cfg);
    assert!(
        eval.overall.avg_perf > 0.80,
        "average performance {} too low",
        eval.overall.avg_perf
    );
}

#[test]
fn mode_is_applied_with_two_window_delay() {
    let cfg = ExperimentConfig::quick();
    let corpus = small_corpus(500);
    let model = zoo::train(ModelKind::BestRf, &corpus, &cfg);
    let mut gen = PhaseGenerator::new(Archetype::DepChain.center(), 42);
    let (warm, window) = record_trace(&mut gen, 2_000, 80_000);
    let res = ClosedLoopRequest::new(&model, &warm, &window, cfg.interval_insts).run();
    // First two windows: no prediction could have been applied.
    assert_eq!(res.modes[0], Mode::HighPerf);
    assert_eq!(res.modes[1], Mode::HighPerf);
    assert!(res.predictions[0].is_none() && res.predictions[1].is_none());
    // Afterwards, applied modes follow the recorded predictions.
    for (i, pred) in res.predictions.iter().enumerate().skip(2) {
        if let Some(p) = pred {
            let expect = if *p == 1 {
                Mode::LowPower
            } else {
                Mode::HighPerf
            };
            assert_eq!(res.modes[i], expect, "window {i}");
        }
    }
}
