//! Smoke tests for the experiment drivers at miniature scale: every
//! driver must run end-to-end and produce structurally-sane output.

use psca::adapt::experiments::{fig4, fig5, fig6, fig7, table1, table2};
use psca::adapt::{CorpusTelemetry, ExperimentConfig};

fn micro_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.hdtr_apps = 10;
    cfg.hdtr_traces_per_app = 1;
    cfg.hdtr_intervals_per_trace = 12;
    cfg.spec_intervals_per_simpoint = 8;
    cfg.spec_max_simpoints_per_workload = 1;
    cfg.folds = 3;
    cfg
}

#[test]
fn table1_and_table2_run() {
    let cfg = micro_cfg();
    let t1 = table1::run(&cfg);
    assert_eq!(t1.ours.total_apps, cfg.hdtr_apps);
    let t2 = table2::run(&cfg);
    assert_eq!(t2.rows.len(), 20);
    assert!(!t1.to_string().is_empty());
    assert!(!t2.to_string().is_empty());
}

#[test]
fn fig7_reports_residency_per_benchmark() {
    let mut cfg = micro_cfg();
    // Only one workload per benchmark to stay fast.
    cfg.spec_max_simpoints_per_workload = 1;
    let spec = {
        // Restrict to a few benchmarks' traces by truncating the corpus.
        let mut c = CorpusTelemetry::spec(&cfg);
        c.traces.truncate(30);
        c
    };
    let f7 = fig7::run(&cfg, &spec);
    assert!(!f7.per_benchmark.is_empty());
    assert!(f7.average > 0.0 && f7.average < 1.0);
    for (_, r) in &f7.per_benchmark {
        assert!((0.0..=1.0).contains(r));
    }
}

#[test]
fn fig4_diversity_sweep_runs() {
    let cfg = micro_cfg();
    let hdtr = CorpusTelemetry::hdtr(&cfg);
    let f4 = fig4::run(&cfg, &hdtr);
    assert!(f4.points.len() >= 2);
    // Sizes are strictly increasing.
    for w in f4.points.windows(2) {
        assert!(w[0].apps < w[1].apps);
    }
    for p in &f4.points {
        assert!((0.0..=1.0).contains(&p.pgos_mean));
        assert!((0.0..=1.0).contains(&p.rsv_mean));
    }
}

#[test]
fn fig5_counter_sweep_runs() {
    let cfg = micro_cfg();
    let hdtr = CorpusTelemetry::hdtr(&cfg);
    let f5 = fig5::run(&cfg, &hdtr);
    assert!(!f5.pf_sweep.is_empty());
    assert!(f5.pf_order.len() >= f5.pf_sweep.last().unwrap().counters.min(4));
    assert_eq!(f5.expert.counters, 8);
}

#[test]
fn fig6_screen_prefers_budget_nets() {
    let cfg = micro_cfg();
    let hdtr = CorpusTelemetry::hdtr(&cfg);
    let f6 = fig6::run(&cfg, &hdtr);
    assert_eq!(f6.points.len(), fig6::topology_grid().len());
    let sel = &f6.points[f6.selected];
    assert!(sel.fits_50k_budget, "selected topology must fit the budget");
    // Cost ordering: the 32/32/16 net must cost more than the 4-filter net.
    let big = f6
        .points
        .iter()
        .find(|p| p.hidden == vec![32, 32, 16])
        .unwrap();
    let small = f6.points.iter().find(|p| p.hidden == vec![4]).unwrap();
    assert!(big.ops > small.ops);
    assert!(
        !big.fits_50k_budget,
        "32/32/16 exceeds the 50k budget (Table 3)"
    );
}
