//! Corpus-level sanity: the synthesized HDTR corpus must present a
//! *balanced, diverse* gating problem — the statistical premise behind
//! §6.1 — and the SPEC suite must stay out-of-sample relative to it.

use psca::adapt::{CorpusTelemetry, ExperimentConfig};
use psca::telemetry::Event;

fn cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.hdtr_apps = 30;
    cfg.hdtr_traces_per_app = 2;
    cfg.hdtr_intervals_per_trace = 12;
    cfg
}

#[test]
fn hdtr_gating_problem_is_balanced_and_diverse() {
    let cfg = cfg();
    let corpus = CorpusTelemetry::hdtr(&cfg);
    let mut gateable = 0u64;
    let mut total = 0u64;
    let mut per_app_rate = Vec::new();
    for trace in &corpus.traces {
        let labels = trace.labels(&cfg.sla);
        let g: u64 = labels.iter().map(|&y| y as u64).sum();
        gateable += g;
        total += labels.len() as u64;
        per_app_rate.push(g as f64 / labels.len().max(1) as f64);
    }
    let rate = gateable as f64 / total as f64;
    // Neither class may dominate: a degenerate corpus cannot exhibit
    // the paper's diversity effects.
    assert!(
        (0.25..=0.90).contains(&rate),
        "HDTR gateable rate {rate} is degenerate"
    );
    // Applications must differ: at least a third of apps on each side of
    // the median rate by a margin.
    per_app_rate.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let spread = per_app_rate.last().unwrap() - per_app_rate.first().unwrap();
    assert!(spread > 0.3, "apps too homogeneous: spread {spread}");
}

#[test]
fn telemetry_streams_are_informative_about_labels() {
    // The premise of §6.2: at least one counter must carry visible signal
    // about gateability. Check the dependence-visibility counter.
    let cfg = cfg();
    let corpus = CorpusTelemetry::hdtr(&cfg);
    let mut ready_gate = Vec::new();
    let mut ready_no = Vec::new();
    for trace in &corpus.traces {
        let labels = trace.labels(&cfg.sla);
        for (t, &y) in labels.iter().enumerate() {
            let v = trace.rows_lo[t][Event::UopsReady.index()];
            if y == 1 {
                ready_gate.push(v);
            } else {
                ready_no.push(v);
            }
        }
    }
    assert!(!ready_gate.is_empty() && !ready_no.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&ready_no) > 1.2 * mean(&ready_gate),
        "µops-ready should separate classes: gate {} vs no-gate {}",
        mean(&ready_gate),
        mean(&ready_no)
    );
}

#[test]
fn spec_apps_do_not_duplicate_hdtr_apps() {
    // The suite is out-of-sample by construction: no parameter-identical
    // phases between HDTR and SPEC models.
    use psca::workloads::{hdtr_corpus, spec::spec_suite};
    let hdtr = hdtr_corpus(1, 40, 20_000);
    let suite = spec_suite(2, 20_000);
    for h in &hdtr {
        for s in &suite {
            for hp in h.app.phases() {
                for sp in s.app.phases() {
                    assert_ne!(hp, sp, "phase leaked between corpora");
                }
            }
        }
    }
}
