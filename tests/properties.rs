//! Property-based tests over core invariants, spanning crates.

use proptest::prelude::*;
use psca::adapt::guardrail::{Guardrail, GuardrailConfig};
use psca::adapt::Sla;
use psca::cpu::{Cache, ClusterSim, CpuConfig, Mode, Tlb};
use psca::ml::metrics::{rate_of_sla_violations, Confusion};
use psca::ml::{Dataset, Matrix, RandomForest, RandomForestConfig};
use psca::telemetry::{CounterBank, Event, ExpandedTelemetry, IntervalSnapshot, NUM_EVENTS};
use psca::trace::{Instruction, OpClass, TraceSource, VecTrace};
use psca::workloads::{Archetype, PhaseGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache hit rate over a working set that fits is eventually 100%.
    #[test]
    fn cache_resident_working_set_hits(lines in 1u64..400, seed in 0u64..1000) {
        let mut c = Cache::new(32 * 1024, 8); // 512 lines
        for round in 0..3 {
            let _ = round;
            for i in 0..lines {
                let line = seed + i;
                let out = c.access(line, false);
                if round > 0 {
                    prop_assert!(out.hit, "line {line} missed after warmup");
                }
            }
        }
    }

    /// A TLB never reports more hits than accesses, and page locality
    /// guarantees hits after first touch within capacity.
    #[test]
    fn tlb_capacity_invariant(pages in 1u64..60, rounds in 2usize..5) {
        let mut tlb = Tlb::new(64);
        let mut misses = 0u64;
        for r in 0..rounds {
            for p in 0..pages {
                if !tlb.access(p << 12) && r > 0 {
                    misses += 1;
                }
            }
        }
        prop_assert_eq!(misses, 0, "resident pages must not miss");
    }

    /// Counter normalization: de-normalizing a snapshot recovers counts.
    #[test]
    fn snapshot_normalization_roundtrips(
        cycles in 1u64..100_000,
        count in 0u64..1_000_000,
    ) {
        let mut bank = CounterBank::new();
        bank.add(Event::Cycles, cycles);
        bank.add(Event::LoadsRetired, count);
        let snap = bank.snapshot_and_reset();
        let recovered = snap.get(Event::LoadsRetired) * snap.cycles as f64;
        prop_assert!((recovered - count as f64).abs() < 1e-6 * count.max(1) as f64);
    }

    /// Aggregation preserves instruction and cycle totals for any split.
    #[test]
    fn aggregation_conserves_totals(parts in prop::collection::vec((1u64..5_000, 1u64..10_000), 1..12)) {
        let snaps: Vec<IntervalSnapshot> = parts
            .iter()
            .map(|&(insts, cycles)| {
                let mut bank = CounterBank::new();
                bank.add(Event::Cycles, cycles);
                bank.add(Event::InstRetired, insts);
                bank.add(Event::UopsIssued, insts);
                bank.snapshot_and_reset()
            })
            .collect();
        let agg = IntervalSnapshot::aggregate(&snaps);
        let insts: u64 = parts.iter().map(|p| p.0).sum();
        let cycles: u64 = parts.iter().map(|p| p.1).sum();
        prop_assert_eq!(agg.instructions, insts);
        prop_assert_eq!(agg.cycles, cycles);
        let uops = agg.get(Event::UopsIssued) * agg.cycles as f64;
        prop_assert!((uops - insts as f64).abs() < 1e-6);
    }

    /// The telemetry expansion is deterministic and non-negative for any
    /// base vector.
    #[test]
    fn expansion_deterministic_nonnegative(
        seed in 0u64..50,
        t in 0u64..200,
        scale in 0.0f64..10.0,
    ) {
        let exp = ExpandedTelemetry::new(seed);
        let base: Vec<f64> = (0..NUM_EVENTS).map(|i| scale * (i as f64 + 1.0) / 10.0).collect();
        let a = exp.expand_row(&base, t);
        let b = exp.expand_row(&base, t);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|v| *v >= 0.0 && v.is_finite()));
    }

    /// PGOS and RSV are bounded in [0, 1] for arbitrary label streams.
    #[test]
    fn metrics_bounded(
        truth in prop::collection::vec(0u8..2, 1..200),
        flips in prop::collection::vec(any::<bool>(), 1..200),
        w in 1usize..32,
    ) {
        let pred: Vec<u8> = truth
            .iter()
            .zip(flips.iter().cycle())
            .map(|(&y, &fl)| if fl { 1 - y } else { y })
            .collect();
        let c = Confusion::from_predictions(&truth, &pred);
        prop_assert!((0.0..=1.0).contains(&c.pgos()));
        prop_assert!((0.0..=1.0).contains(&c.accuracy()));
        let rsv = rate_of_sla_violations(&truth, &pred, w);
        prop_assert!((0.0..=1.0).contains(&rsv));
        // Perfect predictions always give zero RSV.
        prop_assert_eq!(rate_of_sla_violations(&truth, &truth, w), 0.0);
    }

    /// IPC never exceeds the issue width of the active configuration.
    #[test]
    fn ipc_bounded_by_width(arch_idx in 0usize..12, lo in any::<bool>(), seed in 0u64..50) {
        let a = Archetype::ALL[arch_idx];
        let mode = if lo { Mode::LowPower } else { Mode::HighPerf };
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        sim.set_mode(mode);
        let mut gen = PhaseGenerator::new(a.center(), seed);
        let r = sim.run_interval(&mut gen, 5_000).unwrap();
        let width = match mode { Mode::HighPerf => 8.0, Mode::LowPower => 4.0 };
        prop_assert!(r.ipc() > 0.0 && r.ipc() <= width + 1e-9);
        prop_assert!(r.energy > 0.0);
    }

    /// Random-forest probabilities are averages of leaf probabilities and
    /// stay in [0, 1] for any query point.
    #[test]
    fn forest_probabilities_bounded(
        n in 20usize..80,
        seedling in 0u64..100,
        qx in -5.0f64..5.0,
        qy in -5.0f64..5.0,
    ) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64) / n as f64, ((i * 7 + seedling as usize) % n) as f64 / n as f64])
            .collect();
        let labels: Vec<u8> = rows.iter().map(|r| (r[0] > 0.5) as u8).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let data = Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n]);
        let rf = RandomForest::fit(&RandomForestConfig::best_rf(), &data, seedling);
        let p = rf.predict_proba(&[qx, qy]);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// Trace adaptors never invent instructions.
    #[test]
    fn take_never_exceeds(n in 0u64..500, cap in 0u64..500) {
        let insts = vec![Instruction::alu(OpClass::IntAlu, None, [None, None]); n as usize];
        let mut t = VecTrace::new(insts).take_insts(cap);
        let mut count = 0u64;
        while t.next_instruction().is_some() {
            count += 1;
        }
        prop_assert_eq!(count, n.min(cap));
    }

    /// Guardrail: a trip's forced-high-performance stretch never exceeds
    /// the configured cooldown, for any honest decision-driven caller and
    /// any IPC stream.
    #[test]
    fn guardrail_cooldown_is_bounded(
        trip_after in 1usize..4,
        cooldown in 1usize..8,
        probe_period in 2usize..12,
        ipcs in prop::collection::vec(0.01f64..8.0, 1..120),
    ) {
        let cfg = GuardrailConfig { trip_after, cooldown, alpha: 0.5, probe_period };
        let mut g = Guardrail::new(cfg, Sla::paper_default());
        // Honest caller: the vetted decision dictates whether the next
        // observed window ran gated.
        let mut gated = false;
        let mut forced_streak = 0usize;
        for &ipc in &ipcs {
            prop_assert!(g.cooldown_remaining() <= cooldown);
            let was_cooling = g.in_cooldown();
            let d = g.vet(gated, ipc, true);
            if was_cooling {
                prop_assert!(!d, "cooldown must force high-performance");
                forced_streak += 1;
                prop_assert!(forced_streak <= cooldown, "cooldown overran: {forced_streak}");
            } else {
                forced_streak = 0;
            }
            gated = d;
        }
    }

    /// Guardrail: with the SLA always met, probes fire exactly every
    /// `probe_period` gated windows — no trips, no drift in cadence.
    #[test]
    fn guardrail_probe_cadence_is_exact(
        probe_period in 2usize..12,
        n in 30usize..120,
    ) {
        let cfg = GuardrailConfig { probe_period, ..GuardrailConfig::default() };
        let mut g = Guardrail::new(cfg, Sla::paper_default());
        let mut gated = false;
        let mut probe_at = Vec::new();
        for t in 0..n {
            // IPC equal to the reference: gated windows always meet the
            // SLA, so every forced-high window is a probe.
            let d = g.vet(gated, 4.0, true);
            if !d {
                probe_at.push(t);
            }
            gated = d;
        }
        prop_assert_eq!(g.trips(), 0);
        prop_assert_eq!(probe_at.len(), g.probes());
        // One ungated window precedes each streak, so consecutive probes
        // are exactly probe_period + 1 windows apart.
        for w in probe_at.windows(2) {
            prop_assert_eq!(w[1] - w[0], probe_period + 1);
        }
    }

    /// Guardrail: trip and probe counts are monotone non-decreasing and
    /// bounded by the number of observed windows, for any input stream.
    #[test]
    fn guardrail_counts_monotone(
        inputs in prop::collection::vec((any::<bool>(), 0.01f64..8.0, any::<bool>()), 1..150),
    ) {
        let mut g = Guardrail::new(GuardrailConfig::default(), Sla::paper_default());
        let mut prev_trips = 0;
        let mut prev_probes = 0;
        for &(gated, ipc, wants) in &inputs {
            let _ = g.vet(gated, ipc, wants);
            prop_assert!(g.trips() >= prev_trips);
            prop_assert!(g.probes() >= prev_probes);
            prev_trips = g.trips();
            prev_probes = g.probes();
        }
        prop_assert!(g.trips() + g.probes() <= inputs.len());
    }

    /// The phase generator always produces well-formed instructions with
    /// jittered parameters.
    #[test]
    fn generator_well_formed_under_jitter(arch_idx in 0usize..12, seed in 0u64..200) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = Archetype::ALL[arch_idx].sample_params(&mut rng, 0.5);
        let mut gen = PhaseGenerator::new(params, seed);
        for _ in 0..300 {
            let inst = gen.next_instruction().unwrap();
            prop_assert!(inst.is_well_formed());
        }
    }
}
