//! Property-based tests over core invariants, spanning crates.

use proptest::prelude::*;
use psca::cpu::{Cache, ClusterSim, CpuConfig, Mode, Tlb};
use psca::ml::metrics::{rate_of_sla_violations, Confusion};
use psca::ml::{Dataset, Matrix, RandomForest, RandomForestConfig};
use psca::telemetry::{CounterBank, Event, ExpandedTelemetry, IntervalSnapshot, NUM_EVENTS};
use psca::trace::{Instruction, OpClass, TraceSource, VecTrace};
use psca::workloads::{Archetype, PhaseGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache hit rate over a working set that fits is eventually 100%.
    #[test]
    fn cache_resident_working_set_hits(lines in 1u64..400, seed in 0u64..1000) {
        let mut c = Cache::new(32 * 1024, 8); // 512 lines
        for round in 0..3 {
            let _ = round;
            for i in 0..lines {
                let line = seed + i;
                let out = c.access(line, false);
                if round > 0 {
                    prop_assert!(out.hit, "line {line} missed after warmup");
                }
            }
        }
    }

    /// A TLB never reports more hits than accesses, and page locality
    /// guarantees hits after first touch within capacity.
    #[test]
    fn tlb_capacity_invariant(pages in 1u64..60, rounds in 2usize..5) {
        let mut tlb = Tlb::new(64);
        let mut misses = 0u64;
        for r in 0..rounds {
            for p in 0..pages {
                if !tlb.access(p << 12) && r > 0 {
                    misses += 1;
                }
            }
        }
        prop_assert_eq!(misses, 0, "resident pages must not miss");
    }

    /// Counter normalization: de-normalizing a snapshot recovers counts.
    #[test]
    fn snapshot_normalization_roundtrips(
        cycles in 1u64..100_000,
        count in 0u64..1_000_000,
    ) {
        let mut bank = CounterBank::new();
        bank.add(Event::Cycles, cycles);
        bank.add(Event::LoadsRetired, count);
        let snap = bank.snapshot_and_reset();
        let recovered = snap.get(Event::LoadsRetired) * snap.cycles as f64;
        prop_assert!((recovered - count as f64).abs() < 1e-6 * count.max(1) as f64);
    }

    /// Aggregation preserves instruction and cycle totals for any split.
    #[test]
    fn aggregation_conserves_totals(parts in prop::collection::vec((1u64..5_000, 1u64..10_000), 1..12)) {
        let snaps: Vec<IntervalSnapshot> = parts
            .iter()
            .map(|&(insts, cycles)| {
                let mut bank = CounterBank::new();
                bank.add(Event::Cycles, cycles);
                bank.add(Event::InstRetired, insts);
                bank.add(Event::UopsIssued, insts);
                bank.snapshot_and_reset()
            })
            .collect();
        let agg = IntervalSnapshot::aggregate(&snaps);
        let insts: u64 = parts.iter().map(|p| p.0).sum();
        let cycles: u64 = parts.iter().map(|p| p.1).sum();
        prop_assert_eq!(agg.instructions, insts);
        prop_assert_eq!(agg.cycles, cycles);
        let uops = agg.get(Event::UopsIssued) * agg.cycles as f64;
        prop_assert!((uops - insts as f64).abs() < 1e-6);
    }

    /// The telemetry expansion is deterministic and non-negative for any
    /// base vector.
    #[test]
    fn expansion_deterministic_nonnegative(
        seed in 0u64..50,
        t in 0u64..200,
        scale in 0.0f64..10.0,
    ) {
        let exp = ExpandedTelemetry::new(seed);
        let base: Vec<f64> = (0..NUM_EVENTS).map(|i| scale * (i as f64 + 1.0) / 10.0).collect();
        let a = exp.expand_row(&base, t);
        let b = exp.expand_row(&base, t);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|v| *v >= 0.0 && v.is_finite()));
    }

    /// PGOS and RSV are bounded in [0, 1] for arbitrary label streams.
    #[test]
    fn metrics_bounded(
        truth in prop::collection::vec(0u8..2, 1..200),
        flips in prop::collection::vec(any::<bool>(), 1..200),
        w in 1usize..32,
    ) {
        let pred: Vec<u8> = truth
            .iter()
            .zip(flips.iter().cycle())
            .map(|(&y, &fl)| if fl { 1 - y } else { y })
            .collect();
        let c = Confusion::from_predictions(&truth, &pred);
        prop_assert!((0.0..=1.0).contains(&c.pgos()));
        prop_assert!((0.0..=1.0).contains(&c.accuracy()));
        let rsv = rate_of_sla_violations(&truth, &pred, w);
        prop_assert!((0.0..=1.0).contains(&rsv));
        // Perfect predictions always give zero RSV.
        prop_assert_eq!(rate_of_sla_violations(&truth, &truth, w), 0.0);
    }

    /// IPC never exceeds the issue width of the active configuration.
    #[test]
    fn ipc_bounded_by_width(arch_idx in 0usize..12, lo in any::<bool>(), seed in 0u64..50) {
        let a = Archetype::ALL[arch_idx];
        let mode = if lo { Mode::LowPower } else { Mode::HighPerf };
        let mut sim = ClusterSim::new(CpuConfig::skylake_scaled());
        sim.set_mode(mode);
        let mut gen = PhaseGenerator::new(a.center(), seed);
        let r = sim.run_interval(&mut gen, 5_000).unwrap();
        let width = match mode { Mode::HighPerf => 8.0, Mode::LowPower => 4.0 };
        prop_assert!(r.ipc() > 0.0 && r.ipc() <= width + 1e-9);
        prop_assert!(r.energy > 0.0);
    }

    /// Random-forest probabilities are averages of leaf probabilities and
    /// stay in [0, 1] for any query point.
    #[test]
    fn forest_probabilities_bounded(
        n in 20usize..80,
        seedling in 0u64..100,
        qx in -5.0f64..5.0,
        qy in -5.0f64..5.0,
    ) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64) / n as f64, ((i * 7 + seedling as usize) % n) as f64 / n as f64])
            .collect();
        let labels: Vec<u8> = rows.iter().map(|r| (r[0] > 0.5) as u8).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let data = Dataset::new(Matrix::from_rows(&refs), labels, vec![0; n]);
        let rf = RandomForest::fit(&RandomForestConfig::best_rf(), &data, seedling);
        let p = rf.predict_proba(&[qx, qy]);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// Trace adaptors never invent instructions.
    #[test]
    fn take_never_exceeds(n in 0u64..500, cap in 0u64..500) {
        let insts = vec![Instruction::alu(OpClass::IntAlu, None, [None, None]); n as usize];
        let mut t = VecTrace::new(insts).take_insts(cap);
        let mut count = 0u64;
        while t.next_instruction().is_some() {
            count += 1;
        }
        prop_assert_eq!(count, n.min(cap));
    }

    /// The phase generator always produces well-formed instructions with
    /// jittered parameters.
    #[test]
    fn generator_well_formed_under_jitter(arch_idx in 0usize..12, seed in 0u64..200) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = Archetype::ALL[arch_idx].sample_params(&mut rng, 0.5);
        let mut gen = PhaseGenerator::new(params, seed);
        for _ in 0..300 {
            let inst = gen.next_instruction().unwrap();
            prop_assert!(inst.is_well_formed());
        }
    }
}
